// Package core implements the paper's primary contribution: the
// LLM-based entity matching pipeline. A Matcher serializes a pair of
// entity descriptions, builds a prompt from the configured design
// (optionally with in-context demonstrations and matching rules),
// queries a chat model, and parses the natural-language answer into a
// binary matching decision using the paper's rule (Section 2):
// lower-case the answer and look for the word "yes".
//
// Evaluations over pair sets run through internal/pipeline: a bounded
// worker pool with an LRU prompt cache and transient-error retry. The
// Workers, CacheSize and MaxRetries fields of Matcher and
// BatchMatcher tune it; their zero values select the pipeline
// defaults. Since the simulated models are deterministic, concurrent
// cached evaluation returns exactly the results of a sequential run.
package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"llm4em/internal/entity"
	"llm4em/internal/eval"
	"llm4em/internal/llm"
	"llm4em/internal/pipeline"
	"llm4em/internal/prompt"
)

// DemoSelector supplies per-query in-context demonstrations
// (Section 4.1). Implementations live in internal/icl.
type DemoSelector interface {
	// Select returns k demonstrations for the query pair, balanced
	// between matches and non-matches.
	Select(query entity.Pair, k int) []entity.Pair
}

// Matcher is the configured matching pipeline.
type Matcher struct {
	// Client is the language model to query.
	Client llm.Client
	// Design is the prompt design to use.
	Design prompt.Design
	// Domain is the topical domain of the task (selects the wording of
	// domain-scoped task descriptions).
	Domain entity.Domain
	// Rules are optional textual matching rules (Section 4.2).
	Rules []string
	// Demos optionally selects in-context demonstrations; Shots is how
	// many to request per query.
	Demos DemoSelector
	Shots int

	// Workers bounds the concurrent model calls of Evaluate and Stream
	// (0 selects pipeline.DefaultWorkers).
	Workers int
	// CacheSize is the LRU prompt-cache capacity in entries (0 selects
	// pipeline.DefaultCacheSize; negative disables caching).
	CacheSize int
	// MaxRetries is how often a transient client error is retried (0
	// selects pipeline.DefaultMaxRetries; negative disables retrying).
	MaxRetries int

	// mu guards the lazily built engine shared across evaluations, so
	// the prompt cache persists from one Evaluate/Stream call to the
	// next. Do not copy a Matcher after calling its methods.
	mu        sync.Mutex
	eng       *pipeline.Engine
	engClient llm.Client
	engOpts   pipeline.Options
}

// engine returns the matching engine configured by the matcher's
// concurrency knobs, reusing the previous engine (and its prompt
// cache) while the client and knobs are unchanged.
func (m *Matcher) engine() *pipeline.Engine {
	opts := pipeline.Options{
		Workers:    m.Workers,
		CacheSize:  m.CacheSize,
		MaxRetries: m.MaxRetries,
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.eng == nil || m.engClient != m.Client || m.engOpts != opts {
		m.eng = pipeline.New(m.Client, opts)
		m.engClient, m.engOpts = m.Client, opts
	}
	return m.eng
}

// Decision is the outcome of matching one pair.
type Decision struct {
	// Pair is the evaluated pair.
	Pair entity.Pair
	// Match is the parsed decision.
	Match bool
	// Answer is the model's raw reply.
	Answer string
	// Prompt is the full prompt that was sent.
	Prompt string
	// Usage is the model's token and latency accounting. Cached
	// decisions carry the accounting of the original request.
	Usage llm.Response
	// Cached reports whether the response was served by the pipeline's
	// prompt cache instead of a fresh model request.
	Cached bool
}

// fromPipeline converts a pipeline decision to the core form.
func fromPipeline(d pipeline.Decision) Decision {
	return Decision{
		Pair:   d.Pair,
		Match:  d.Match,
		Answer: d.Answer,
		Prompt: d.Prompt,
		Usage:  d.Usage,
		Cached: d.Cached,
	}
}

// Correct reports whether the decision agrees with the gold label.
func (d Decision) Correct() bool { return d.Match == d.Pair.Match }

// BuildPrompt renders the prompt this matcher would send for a pair.
func (m *Matcher) BuildPrompt(pair entity.Pair) string {
	spec := prompt.Spec{Design: m.Design, Domain: m.Domain, Rules: m.Rules}
	if m.Demos != nil && m.Shots > 0 {
		spec.Demonstrations = m.Demos.Select(pair, m.Shots)
	}
	return spec.Build(pair)
}

// MatchPair runs the pipeline on a single pair.
func (m *Matcher) MatchPair(pair entity.Pair) (Decision, error) {
	p := m.BuildPrompt(pair)
	resp, err := m.Client.Chat([]llm.Message{{Role: llm.User, Content: p}})
	if err != nil {
		return Decision{}, fmt.Errorf("core: chat for pair %s: %w", pair.ID, err)
	}
	return Decision{
		Pair:   pair,
		Match:  ParseAnswer(resp.Content),
		Answer: resp.Content,
		Prompt: p,
		Usage:  resp,
	}, nil
}

// ParseAnswer converts a model reply into a binary matching decision
// using the paper's parsing rule: lower-case the answer and parse for
// the word "yes"; any other reply counts as a non-match.
func ParseAnswer(answer string) bool {
	lower := strings.ToLower(answer)
	// Word-level containment: "yes" must appear as its own token.
	start := 0
	for i := 0; i <= len(lower)-3; i++ {
		if lower[i:i+3] != "yes" {
			continue
		}
		beforeOK := i == start || !isWordByte(lower[i-1])
		afterOK := i+3 == len(lower) || !isWordByte(lower[i+3])
		if beforeOK && afterOK {
			return true
		}
	}
	return false
}

func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= '0' && b <= '9'
}

// Result aggregates the evaluation of a matcher over a pair set.
type Result struct {
	// Confusion tallies the decisions against gold labels.
	Confusion eval.Confusion
	// PromptTokens and CompletionTokens are summed over all requests.
	PromptTokens     int
	CompletionTokens int
	// TotalLatency is the summed simulated request latency.
	TotalLatency time.Duration
	// Requests is the number of pairs evaluated.
	Requests int
	// Decisions holds per-pair outcomes when requested via
	// EvaluateKeeping.
	Decisions []Decision
}

// F1 returns the F1-score of the run in percent.
func (r Result) F1() float64 { return r.Confusion.F1() }

// MeanPromptTokens returns the mean prompt length in tokens.
func (r Result) MeanPromptTokens() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.PromptTokens) / float64(r.Requests)
}

// MeanCompletionTokens returns the mean completion length in tokens.
func (r Result) MeanCompletionTokens() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.CompletionTokens) / float64(r.Requests)
}

// MeanLatency returns the mean simulated latency per request.
func (r Result) MeanLatency() time.Duration {
	if r.Requests == 0 {
		return 0
	}
	return r.TotalLatency / time.Duration(r.Requests)
}

// add folds one decision into the aggregate. Usage is counted per
// pair even for cached decisions, preserving the paper's per-request
// accounting (a deployment would not re-bill a cached prompt, but
// the tables report what the model work costs).
func (r *Result) add(d Decision) {
	r.Confusion.Add(d.Pair.Match, d.Match)
	r.PromptTokens += d.Usage.PromptTokens
	r.CompletionTokens += d.Usage.CompletionTokens
	r.TotalLatency += d.Usage.Latency
	r.Requests++
}

// Evaluate runs the matcher over the pairs on the concurrent pipeline
// and aggregates metrics.
func (m *Matcher) Evaluate(pairs []entity.Pair) (Result, error) {
	return m.evaluate(pairs, false)
}

// EvaluateKeeping is Evaluate but additionally retains every per-pair
// decision (in input order), which the explanation and error-analysis
// pipelines need.
func (m *Matcher) EvaluateKeeping(pairs []entity.Pair) (Result, error) {
	return m.evaluate(pairs, true)
}

func (m *Matcher) evaluate(pairs []entity.Pair, keep bool) (Result, error) {
	decisions, err := m.engine().Match(pairs, m.BuildPrompt, ParseAnswer)
	if err != nil {
		return Result{}, fmt.Errorf("core: %w", err)
	}
	var r Result
	if keep {
		r.Decisions = make([]Decision, 0, len(pairs))
	}
	for _, pd := range decisions {
		d := fromPipeline(pd)
		r.add(d)
		if keep {
			r.Decisions = append(r.Decisions, d)
		}
	}
	return r, nil
}

// Stream evaluates the pairs on the concurrent pipeline and delivers
// decisions in completion order on the returned channel, which is
// closed when the run ends. The wait function blocks until then,
// returns the aggregated result or the first error, and may be called
// any number of times. The channel is buffered for the full pair set,
// so abandoning it early leaks nothing (the remaining pairs are still
// evaluated).
func (m *Matcher) Stream(pairs []entity.Pair) (<-chan Decision, func() (Result, error)) {
	pd, wait := m.engine().Stream(pairs, m.BuildPrompt, ParseAnswer)
	out := make(chan Decision, len(pairs))
	resc := make(chan Result, 1)
	go func() {
		var r Result
		for d := range pd {
			cd := fromPipeline(d)
			r.add(cd)
			out <- cd
		}
		close(out)
		resc <- r
	}()
	var once sync.Once
	var res Result
	var err error
	return out, func() (Result, error) {
		once.Do(func() {
			if werr := wait(); werr != nil {
				err = fmt.Errorf("core: %w", werr)
				return
			}
			res = <-resc
		})
		return res, err
	}
}
