package pipeline

import (
	"fmt"
	"testing"
	"time"

	"llm4em/internal/entity"
	"llm4em/internal/llm"
)

// delayedClient wraps a client with a fixed real-time delay per
// request, standing in for the network latency of a hosted API. The
// simulated models answer instantly (their Latency field is
// accounting only), so wall-clock benchmarks need real waiting to
// show what the worker pool buys.
type delayedClient struct {
	inner llm.Client
	delay time.Duration
}

func (c *delayedClient) Name() string { return c.inner.Name() }

func (c *delayedClient) Chat(messages []llm.Message) (llm.Response, error) {
	time.Sleep(c.delay)
	return c.inner.Chat(messages)
}

func benchPairs(n int) []entity.Pair {
	pairs := make([]entity.Pair, n)
	for i := range pairs {
		pairs[i] = entity.Pair{
			ID: fmt.Sprintf("bench%d", i),
			A:  entity.Record{ID: "a", Attrs: []entity.Attr{{Name: "title", Value: fmt.Sprintf("logitech mouse m%d", i)}}},
			B:  entity.Record{ID: "b", Attrs: []entity.Attr{{Name: "title", Value: fmt.Sprintf("logitech wireless mouse m%d", i)}}},
		}
	}
	return pairs
}

// benchMatch measures one full evaluation of 32 pairs against the
// simulated GPT-4 behind 2ms of per-request latency. Comparing
// workers=1 with workers=4/8 demonstrates the pipeline's speedup:
// sequential pays 32 × 2ms ≈ 64ms of latency per evaluation, 8
// workers pay ≈ 8ms.
func benchMatch(b *testing.B, workers int) {
	client := &delayedClient{inner: llm.MustNew(llm.GPT4), delay: 2 * time.Millisecond}
	pairs := benchPairs(32)
	build := func(p entity.Pair) string { return "match? " + p.A.Serialize() + " vs " + p.B.Serialize() }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh engine per iteration keeps the cache cold, so every
		// iteration measures real client traffic.
		e := New(client, Options{Workers: workers, CacheSize: -1})
		if _, err := e.Match(pairs, build, parseYes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchSequential(b *testing.B) { benchMatch(b, 1) }
func BenchmarkMatchWorkers4(b *testing.B)   { benchMatch(b, 4) }
func BenchmarkMatchWorkers8(b *testing.B)   { benchMatch(b, 8) }

// BenchmarkMatchCached measures a warm-cache evaluation: after the
// first run every prompt is a cache hit and no request pays the
// simulated network latency.
func BenchmarkMatchCached(b *testing.B) {
	client := &delayedClient{inner: llm.MustNew(llm.GPT4), delay: 2 * time.Millisecond}
	pairs := benchPairs(32)
	build := func(p entity.Pair) string { return "match? " + p.A.Serialize() + " vs " + p.B.Serialize() }
	e := New(client, Options{Workers: 8})
	if _, err := e.Match(pairs, build, parseYes); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Match(pairs, build, parseYes); err != nil {
			b.Fatal(err)
		}
	}
}
