package pipeline

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"llm4em/internal/entity"
	"llm4em/internal/llm"
)

// fakeClient is a scriptable llm.Client that counts its calls.
type fakeClient struct {
	name  string
	calls atomic.Int64
	delay time.Duration
	// fail, when set, may return an error for a call; call numbers
	// start at 1.
	fail func(call int64, prompt string) error
}

func (c *fakeClient) Name() string {
	if c.name == "" {
		return "fake"
	}
	return c.name
}

func (c *fakeClient) Chat(messages []llm.Message) (llm.Response, error) {
	call := c.calls.Add(1)
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	prompt := messages[len(messages)-1].Content
	if c.fail != nil {
		if err := c.fail(call, prompt); err != nil {
			return llm.Response{}, err
		}
	}
	answer := "No."
	if strings.Contains(prompt, "same") {
		answer = "Yes."
	}
	return llm.Response{Content: answer, PromptTokens: len(prompt), CompletionTokens: 1}, nil
}

func makePairs(n int) []entity.Pair {
	pairs := make([]entity.Pair, n)
	for i := range pairs {
		kind := "same"
		if i%2 == 1 {
			kind = "different"
		}
		pairs[i] = entity.Pair{
			ID:    fmt.Sprintf("p%d", i),
			A:     entity.Record{ID: fmt.Sprintf("a%d", i), Attrs: []entity.Attr{{Name: "title", Value: fmt.Sprintf("%s item %d", kind, i)}}},
			B:     entity.Record{ID: fmt.Sprintf("b%d", i), Attrs: []entity.Attr{{Name: "title", Value: fmt.Sprintf("%s item %d", kind, i)}}},
			Match: i%2 == 0,
		}
	}
	return pairs
}

func buildPrompt(p entity.Pair) string {
	return "match? " + p.A.Serialize() + " vs " + p.B.Serialize()
}

func parseYes(answer string) bool {
	return strings.Contains(strings.ToLower(answer), "yes")
}

func TestMatchDeterministicOrder(t *testing.T) {
	pairs := makePairs(40)
	e := New(&fakeClient{}, Options{Workers: 8})
	ds, err := e.Match(pairs, buildPrompt, parseYes)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != len(pairs) {
		t.Fatalf("got %d decisions, want %d", len(ds), len(pairs))
	}
	for i, d := range ds {
		if d.Index != i || d.Pair.ID != pairs[i].ID {
			t.Fatalf("decision %d out of order: index %d pair %s", i, d.Index, d.Pair.ID)
		}
		if d.Match != pairs[i].Match {
			t.Errorf("pair %s: match = %v, want %v", d.Pair.ID, d.Match, pairs[i].Match)
		}
	}
}

func TestMatchAgreesWithSequential(t *testing.T) {
	pairs := makePairs(30)
	seq, err := New(&fakeClient{}, Options{Workers: 1, CacheSize: -1}).Match(pairs, buildPrompt, parseYes)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := New(&fakeClient{}, Options{Workers: 8}).Match(pairs, buildPrompt, parseYes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i].Match != conc[i].Match || seq[i].Answer != conc[i].Answer {
			t.Fatalf("pair %d: sequential and concurrent runs disagree", i)
		}
	}
}

func TestStreamDeliversAll(t *testing.T) {
	pairs := makePairs(25)
	e := New(&fakeClient{}, Options{Workers: 4})
	ch, wait := e.Stream(pairs, buildPrompt, parseYes)
	seen := map[int]bool{}
	for d := range ch {
		if seen[d.Index] {
			t.Fatalf("index %d delivered twice", d.Index)
		}
		seen[d.Index] = true
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(pairs) {
		t.Fatalf("streamed %d decisions, want %d", len(seen), len(pairs))
	}
}

func TestStreamPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	client := &fakeClient{fail: func(call int64, prompt string) error {
		if strings.Contains(prompt, "item 7") {
			return boom
		}
		return nil
	}}
	e := New(client, Options{Workers: 4})
	ch, wait := e.Stream(makePairs(20), buildPrompt, parseYes)
	for range ch {
	}
	if err := wait(); !errors.Is(err, boom) {
		t.Fatalf("wait() = %v, want wrapped boom", err)
	}
}

func TestCacheDeduplicatesPrompts(t *testing.T) {
	client := &fakeClient{}
	e := New(client, Options{Workers: 8})
	// All pairs build the same two prompts.
	pairs := makePairs(64)
	samePrompt := func(p entity.Pair) string {
		if p.Match {
			return "match? same thing"
		}
		return "match? different thing"
	}
	ds, err := e.Match(pairs, samePrompt, parseYes)
	if err != nil {
		t.Fatal(err)
	}
	if got := client.calls.Load(); got != 2 {
		t.Fatalf("client saw %d calls for 2 unique prompts, want 2", got)
	}
	cached := 0
	for _, d := range ds {
		if d.Cached {
			cached++
		}
	}
	if cached != len(pairs)-2 {
		t.Fatalf("got %d cached decisions, want %d", cached, len(pairs)-2)
	}
	if s := e.Stats(); s.ClientCalls != 2 || s.CacheHits != uint64(len(pairs)-2) {
		t.Fatalf("stats = %+v, want 2 calls and %d hits", s, len(pairs)-2)
	}
}

func TestCacheSharedAcrossRuns(t *testing.T) {
	client := &fakeClient{}
	e := New(client, Options{Workers: 4})
	pairs := makePairs(10)
	if _, err := e.Match(pairs, buildPrompt, parseYes); err != nil {
		t.Fatal(err)
	}
	first := client.calls.Load()
	if _, err := e.Match(pairs, buildPrompt, parseYes); err != nil {
		t.Fatal(err)
	}
	if got := client.calls.Load(); got != first {
		t.Fatalf("second run issued %d extra calls, want 0", got-first)
	}
}

func TestCacheDisabled(t *testing.T) {
	client := &fakeClient{}
	e := New(client, Options{Workers: 2, CacheSize: -1})
	prompts := []string{"p", "p", "p", "p"}
	if _, err := e.CompleteAll(prompts); err != nil {
		t.Fatal(err)
	}
	if got := client.calls.Load(); got != int64(len(prompts)) {
		t.Fatalf("client saw %d calls with cache disabled, want %d", got, len(prompts))
	}
}

// TestPeekAndSeed covers the cache-layering surface used by the
// batching dispatcher: Peek never computes or waits, Seed installs a
// response as if the client had answered, and neither touches
// existing entries.
func TestPeekAndSeed(t *testing.T) {
	client := &fakeClient{}
	e := New(client, Options{Workers: 2})

	if _, ok := e.Peek("p"); ok {
		t.Fatal("Peek reported a hit on an empty cache")
	}
	e.Seed("p", llm.Response{Content: "Yes.", PromptTokens: 7})
	resp, ok := e.Peek("p")
	if !ok || resp.Content != "Yes." || resp.PromptTokens != 7 {
		t.Fatalf("Peek after Seed = %+v %v", resp, ok)
	}
	// A Complete of the seeded prompt is a cache hit: no client call.
	if _, cached, err := e.Complete("p"); err != nil || !cached {
		t.Fatalf("Complete(seeded) cached=%v err=%v", cached, err)
	}
	if client.calls.Load() != 0 {
		t.Fatalf("client saw %d calls, want 0", client.calls.Load())
	}

	// Seeding an existing key leaves the original entry untouched.
	e.Seed("p", llm.Response{Content: "No."})
	if resp, _ := e.Peek("p"); resp.Content != "Yes." {
		t.Fatalf("Seed overwrote an existing entry: %+v", resp)
	}

	// An in-flight computation is not a Peek hit and is not displaced
	// by Seed: the coalesced answer wins.
	slow := &fakeClient{delay: 20 * time.Millisecond}
	es := New(slow, Options{Workers: 2})
	done := make(chan llm.Response, 1)
	go func() {
		resp, _, _ := es.Complete("same thing")
		done <- resp
	}()
	for slow.calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, ok := es.Peek("same thing"); ok {
		t.Error("Peek joined an in-flight computation")
	}
	es.Seed("same thing", llm.Response{Content: "seeded"})
	if resp := <-done; resp.Content != "Yes." {
		t.Errorf("in-flight answer = %q, want the client's Yes.", resp.Content)
	}

	// With caching disabled both are inert.
	ed := New(&fakeClient{}, Options{CacheSize: -1})
	ed.Seed("p", llm.Response{Content: "Yes."})
	if _, ok := ed.Peek("p"); ok {
		t.Fatal("Peek hit with caching disabled")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	client := &fakeClient{}
	e := New(client, Options{Workers: 1, CacheSize: 2})
	for _, p := range []string{"a", "b", "c", "a"} {
		if _, _, err := e.Complete(p); err != nil {
			t.Fatal(err)
		}
	}
	// "a" was evicted by "c", so the final "a" recomputes.
	if got := client.calls.Load(); got != 4 {
		t.Fatalf("client saw %d calls, want 4 (a evicted)", got)
	}
	if n := e.cache.len(); n > 2 {
		t.Fatalf("cache holds %d entries, capacity 2", n)
	}
	// "c" stayed resident.
	if _, cached, _ := e.Complete("c"); !cached {
		t.Fatal("expected c to still be cached")
	}
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	boom := errors.New("boom")
	var failed atomic.Bool
	client := &fakeClient{fail: func(call int64, prompt string) error {
		if failed.CompareAndSwap(false, true) {
			return boom
		}
		return nil
	}}
	e := New(client, Options{Workers: 1})
	if _, _, err := e.Complete("p"); !errors.Is(err, boom) {
		t.Fatalf("first call: %v, want boom", err)
	}
	if _, _, err := e.Complete("p"); err != nil {
		t.Fatalf("second call should recompute after error, got %v", err)
	}
	if got := client.calls.Load(); got != 2 {
		t.Fatalf("client saw %d calls, want 2", got)
	}
}

func TestRetryTransient(t *testing.T) {
	client := &fakeClient{fail: func(call int64, prompt string) error {
		if call <= 2 {
			return Transient(errors.New("rate limited"))
		}
		return nil
	}}
	e := New(client, Options{Workers: 1, MaxRetries: 2, Backoff: time.Microsecond})
	e.sleep = func(time.Duration) {}
	resp, _, err := e.Complete("p")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Content == "" {
		t.Fatal("empty response after successful retry")
	}
	if s := e.Stats(); s.Retries != 2 || s.ClientCalls != 1 {
		t.Fatalf("stats = %+v, want 2 retries within 1 logical call", s)
	}
}

func TestRetryExhausted(t *testing.T) {
	client := &fakeClient{fail: func(call int64, prompt string) error {
		return Transient(errors.New("still down"))
	}}
	e := New(client, Options{Workers: 1, MaxRetries: 2, Backoff: time.Microsecond})
	e.sleep = func(time.Duration) {}
	if _, _, err := e.Complete("p"); !IsTransient(err) {
		t.Fatalf("want transient error after exhausted retries, got %v", err)
	}
	if got := client.calls.Load(); got != 3 {
		t.Fatalf("client saw %d attempts, want 3 (1 + 2 retries)", got)
	}
}

func TestNoRetryOnPermanentError(t *testing.T) {
	boom := errors.New("bad request")
	client := &fakeClient{fail: func(call int64, prompt string) error { return boom }}
	e := New(client, Options{Workers: 1, MaxRetries: 5, Backoff: time.Microsecond})
	e.sleep = func(time.Duration) {}
	if _, _, err := e.Complete("p"); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if got := client.calls.Load(); got != 1 {
		t.Fatalf("client saw %d attempts for a permanent error, want 1", got)
	}
}

func TestIsTransient(t *testing.T) {
	if IsTransient(nil) {
		t.Error("nil should not be transient")
	}
	if IsTransient(errors.New("plain")) {
		t.Error("plain error should not be transient")
	}
	if !IsTransient(Transient(errors.New("x"))) {
		t.Error("Transient() should be transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", Transient(errors.New("x")))) {
		t.Error("wrapped transient should be transient")
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) should be nil")
	}
}

func TestForEachVisitsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 100} {
		var visited atomic.Int64
		n := 50
		if err := ForEach(n, workers, func(i int) error {
			visited.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got := visited.Load(); got != int64(n) {
			t.Fatalf("workers=%d: visited %d jobs, want %d", workers, got, n)
		}
	}
}

func TestForEachStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	var after atomic.Int64
	err := ForEach(1000, 4, func(i int) error {
		if i == 3 {
			return boom
		}
		if i > 500 {
			after.Add(1)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if got := after.Load(); got > 100 {
		t.Fatalf("ran %d jobs far past the error, expected cancellation", got)
	}
}

// TestConcurrencySpeedup pins the acceptance criterion: with a
// latency-bound client, 4+ workers finish at least twice as fast as
// sequential evaluation.
func TestConcurrencySpeedup(t *testing.T) {
	const delay = 4 * time.Millisecond
	pairs := makePairs(32)

	run := func(workers int) time.Duration {
		e := New(&fakeClient{delay: delay}, Options{Workers: workers, CacheSize: -1})
		start := time.Now()
		if _, err := e.Match(pairs, buildPrompt, parseYes); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	seq := run(1)
	conc := run(8)
	if conc > seq/2 {
		t.Fatalf("8 workers took %v vs sequential %v; want at least 2x speedup", conc, seq)
	}
}

// TestMatchRaceSimulatedModel exercises the pool against the real
// simulated model so `go test -race` can observe the full path.
func TestMatchRaceSimulatedModel(t *testing.T) {
	model := llm.MustNew(llm.GPT4)
	pairs := makePairs(24)
	e := New(model, Options{Workers: 8})
	ds, err := e.Match(pairs, buildPrompt, parseYes)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != len(pairs) {
		t.Fatalf("got %d decisions, want %d", len(ds), len(pairs))
	}
	for i, d := range ds {
		if d.Index != i {
			t.Fatalf("decision %d carries index %d", i, d.Index)
		}
		if d.Answer == "" {
			t.Fatalf("pair %s: empty answer", d.Pair.ID)
		}
	}
}

// TestCacheRace hammers a tiny cache from many goroutines; run with
// -race to validate the locking.
func TestCacheRace(t *testing.T) {
	client := &fakeClient{}
	e := New(client, Options{Workers: 16, CacheSize: 4})
	prompts := make([]string, 200)
	for i := range prompts {
		prompts[i] = fmt.Sprintf("p%d", i%8)
	}
	if _, err := e.CompleteAll(prompts); err != nil {
		t.Fatal(err)
	}
	if n := e.cache.len(); n > 4 {
		t.Fatalf("cache holds %d entries, capacity 4", n)
	}
}
