package pipeline

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"llm4em/internal/llm"
)

// TestBackoffFullJitter pins the full-jitter schedule: each retry
// sleeps rand()*cap with the cap doubling per attempt, so two engines
// with different draws never stampede in lockstep.
func TestBackoffFullJitter(t *testing.T) {
	cases := []struct {
		name  string
		draws []float64
		want  []time.Duration // expected sleeps for Backoff=100ms, 3 retries
	}{
		{
			name:  "mid draws double the cap",
			draws: []float64{0.5, 0.5, 0.5},
			want:  []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond},
		},
		{
			// A zero draw skips the sleep call entirely — retries still
			// happen, they just don't wait.
			name:  "zero draw skips the sleep",
			draws: []float64{0, 0, 0},
			want:  nil,
		},
		{
			name:  "mixed draws",
			draws: []float64{0.25, 1, 0.1},
			want:  []time.Duration{25 * time.Millisecond, 200 * time.Millisecond, 40 * time.Millisecond},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			client := &fakeClient{fail: func(call int64, prompt string) error {
				return Transient(errors.New("down"))
			}}
			e := New(client, Options{Workers: 1, MaxRetries: 3, Backoff: 100 * time.Millisecond})
			var slept []time.Duration
			e.sleep = func(d time.Duration) { slept = append(slept, d) }
			draw := 0
			e.rand = func() float64 {
				d := tc.draws[draw%len(tc.draws)]
				draw++
				return d
			}
			if _, _, err := e.Complete("p"); !IsTransient(err) {
				t.Fatalf("err = %v, want transient after exhausted retries", err)
			}
			if len(slept) != len(tc.want) {
				t.Fatalf("slept %d times, want %d (%v)", len(slept), len(tc.want), slept)
			}
			for i, want := range tc.want {
				if slept[i] != want {
					t.Errorf("sleep %d = %v, want %v", i, slept[i], want)
				}
			}
		})
	}
}

// TestRetryAfterHint pins the Retry-After contract: a hinted transient
// error overrides the jitter draw exactly, and unhinted ones fall back
// to it.
func TestRetryAfterHint(t *testing.T) {
	cases := []struct {
		name string
		errs []error // per-attempt errors; nil = success
		want []time.Duration
	}{
		{
			name: "hint overrides jitter",
			errs: []error{TransientAfter(errors.New("429"), 123*time.Millisecond), nil},
			want: []time.Duration{123 * time.Millisecond},
		},
		{
			name: "hint per attempt",
			errs: []error{
				TransientAfter(errors.New("429"), 10*time.Millisecond),
				TransientAfter(errors.New("429"), 70*time.Millisecond),
				nil,
			},
			want: []time.Duration{10 * time.Millisecond, 70 * time.Millisecond},
		},
		{
			name: "unhinted falls back to jitter of the doubling cap",
			errs: []error{
				Transient(errors.New("503")),
				TransientAfter(errors.New("429"), 5*time.Millisecond),
				Transient(errors.New("503")),
				nil,
			},
			// draw=1.0: 1*100ms, then the 5ms hint, then 1*400ms (cap
			// kept doubling across the hinted attempt).
			want: []time.Duration{100 * time.Millisecond, 5 * time.Millisecond, 400 * time.Millisecond},
		},
		{
			name: "zero hint behaves like plain transient",
			errs: []error{TransientAfter(errors.New("429"), 0), nil},
			want: []time.Duration{100 * time.Millisecond},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			client := &fakeClient{fail: func(call int64, prompt string) error {
				return tc.errs[(call-1)%int64(len(tc.errs))]
			}}
			e := New(client, Options{Workers: 1, MaxRetries: 5, Backoff: 100 * time.Millisecond})
			var slept []time.Duration
			e.sleep = func(d time.Duration) { slept = append(slept, d) }
			e.rand = func() float64 { return 1.0 }
			if _, _, err := e.Complete("p"); err != nil {
				t.Fatalf("Complete: %v", err)
			}
			if len(slept) != len(tc.want) {
				t.Fatalf("slept %v, want %v", slept, tc.want)
			}
			for i, want := range tc.want {
				if slept[i] != want {
					t.Errorf("sleep %d = %v, want %v", i, slept[i], want)
				}
			}
		})
	}
}

func TestRetryAfterAccessor(t *testing.T) {
	if _, ok := RetryAfter(nil); ok {
		t.Error("nil error should carry no hint")
	}
	if _, ok := RetryAfter(errors.New("plain")); ok {
		t.Error("plain error should carry no hint")
	}
	if _, ok := RetryAfter(Transient(errors.New("x"))); ok {
		t.Error("unhinted transient should carry no hint")
	}
	hinted := TransientAfter(errors.New("429"), 7*time.Second)
	if d, ok := RetryAfter(hinted); !ok || d != 7*time.Second {
		t.Errorf("RetryAfter = %v, %v; want 7s, true", d, ok)
	}
	if !IsTransient(hinted) {
		t.Error("TransientAfter should still be transient")
	}
	if TransientAfter(nil, time.Second) != nil {
		t.Error("TransientAfter(nil) should be nil")
	}
}

// ctxClient implements llm.ContextClient: it blocks until the context
// is cancelled unless scripted to answer.
type ctxClient struct {
	answer bool
}

func (c *ctxClient) Name() string { return "ctx" }

func (c *ctxClient) Chat(messages []llm.Message) (llm.Response, error) {
	return c.ChatContext(context.Background(), messages)
}

func (c *ctxClient) ChatContext(ctx context.Context, messages []llm.Message) (llm.Response, error) {
	if c.answer {
		return llm.Response{Content: "Yes."}, nil
	}
	<-ctx.Done()
	return llm.Response{}, ctx.Err()
}

func TestCompleteContextCancelsInFlightWork(t *testing.T) {
	e := New(&ctxClient{}, Options{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := e.CompleteContext(ctx, "p")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, deadline was 10ms", elapsed)
	}
}

func TestCompleteContextExpiredBeforeAttempt(t *testing.T) {
	client := &fakeClient{}
	e := New(client, Options{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.CompleteContext(ctx, "p"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if client.calls.Load() != 0 {
		t.Fatal("expired context still reached the client")
	}
}

// slowThenFastClient hangs on its first request and answers later
// ones instantly, so a hedged second request wins.
type slowThenFastClient struct {
	release chan struct{}
	n       atomic.Int64
}

func (c *slowThenFastClient) Name() string { return "slowfast" }

func (c *slowThenFastClient) Chat(messages []llm.Message) (llm.Response, error) {
	return c.ChatContext(context.Background(), messages)
}

func (c *slowThenFastClient) ChatContext(ctx context.Context, messages []llm.Message) (llm.Response, error) {
	if c.n.Add(1) == 1 {
		select {
		case <-c.release:
		case <-ctx.Done():
			return llm.Response{}, ctx.Err()
		}
	}
	return llm.Response{Content: "Yes."}, nil
}

func TestHedgedRequestWinsOverStall(t *testing.T) {
	client := &slowThenFastClient{release: make(chan struct{})}
	defer close(client.release)
	e := New(client, Options{Workers: 1, Hedge: 5 * time.Millisecond})
	resp, _, err := e.Complete("p")
	if err != nil || resp.Content != "Yes." {
		t.Fatalf("Complete = %q, %v; want Yes., nil", resp.Content, err)
	}
	if s := e.Stats(); s.Hedged != 1 {
		t.Fatalf("hedged = %d, want 1", s.Hedged)
	}
}
