// Package pipeline is the concurrent matching engine of the system.
// It evaluates sets of entity pairs (or raw prompts) against an
// llm.Client on a bounded worker pool, deduplicates identical prompts
// through an in-memory LRU response cache keyed by (model, prompt),
// retries transient client errors with exponential backoff, and
// offers both a deterministic bulk API and a streaming API that
// delivers decisions in completion order for incremental progress
// reporting.
//
// The package sits between the llm layer (which answers single
// prompts) and the core layer (which knows how to build prompts and
// parse answers): core.Matcher and core.BatchMatcher route their
// evaluations through an Engine, and the experiment harness reuses
// the same worker pool via ForEach. Because all simulated models are
// deterministic at temperature 0, concurrent evaluation and response
// caching never change results — only how fast they arrive.
package pipeline

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"llm4em/internal/entity"
	"llm4em/internal/llm"
	"llm4em/internal/telemetry"
)

// Defaults used when an Options field is left at its zero value. LLM
// calls are latency-bound rather than CPU-bound, so the default
// worker count intentionally exceeds typical core counts.
const (
	DefaultWorkers    = 8
	DefaultCacheSize  = 1024
	DefaultMaxRetries = 2
	DefaultBackoff    = 50 * time.Millisecond
)

// Options tunes an Engine. The zero value selects sensible defaults;
// negative CacheSize disables caching and negative MaxRetries
// disables retrying.
type Options struct {
	// Workers bounds the number of concurrent client calls
	// (default DefaultWorkers).
	Workers int
	// CacheSize is the capacity of the LRU response cache in entries
	// (default DefaultCacheSize; negative disables caching).
	CacheSize int
	// MaxRetries is how many times a transient client error is retried
	// before it is reported (default DefaultMaxRetries; negative
	// disables retrying).
	MaxRetries int
	// Backoff is the cap of the full-jitter sleep before the first
	// retry; the cap doubles with every further attempt (default
	// DefaultBackoff). The actual sleep is drawn uniformly from
	// [0, cap) so batched retries don't stampede the backend in
	// lockstep; a RetryAfter hint on the error overrides the draw.
	Backoff time.Duration
	// Hedge, when positive, launches a second identical client request
	// if the first has not answered within this duration; the first
	// response to arrive wins. It trims tail latency at the cost of
	// duplicate backend work, so it only makes sense against remote
	// clients with real latency variance (default 0: disabled).
	Hedge time.Duration
	// Metrics are the telemetry instruments the engine records into
	// (call counts, per-attempt latency, retries, cache hits). The
	// zero value disables them at the cost of nil checks.
	Metrics telemetry.PipelineMetrics
}

// withDefaults resolves zero-valued fields to the package defaults.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = DefaultWorkers
	}
	if o.CacheSize == 0 {
		o.CacheSize = DefaultCacheSize
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = DefaultMaxRetries
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = DefaultBackoff
	}
	return o
}

// Stats counts what an Engine did. Cached prompts never reach the
// client, so ClientCalls + CacheHits equals the number of completed
// requests.
type Stats struct {
	// ClientCalls is the number of requests that reached the client
	// (retries of the same prompt count once).
	ClientCalls uint64
	// CacheHits is the number of requests answered from the cache,
	// including requests coalesced onto an identical in-flight prompt.
	CacheHits uint64
	// Retries is the number of extra attempts after transient errors.
	Retries uint64
	// Hedged is the number of hedged second requests launched.
	Hedged uint64
}

// Engine executes prompts against one client with bounded
// concurrency, response caching and retry. An Engine is safe for
// concurrent use and may be reused across evaluations; reuse shares
// the response cache.
type Engine struct {
	client llm.Client
	opts   Options
	cache  *promptCache

	clientCalls atomic.Uint64
	retries     atomic.Uint64
	hedged      atomic.Uint64

	// sleep is swapped in tests to avoid real backoff waits; rand is
	// swapped to pin the jitter draw.
	sleep func(time.Duration)
	rand  func() float64
}

// New returns an engine over the client with the given options.
func New(client llm.Client, opts Options) *Engine {
	o := opts.withDefaults()
	e := &Engine{client: client, opts: o, sleep: time.Sleep, rand: rand.Float64}
	if o.CacheSize > 0 {
		e.cache = newPromptCache(o.CacheSize)
	}
	return e
}

// Client returns the engine's underlying client.
func (e *Engine) Client() llm.Client { return e.client }

// Workers returns the resolved worker-pool size.
func (e *Engine) Workers() int { return e.opts.Workers }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		ClientCalls: e.clientCalls.Load(),
		Retries:     e.retries.Load(),
		Hedged:      e.hedged.Load(),
	}
	if e.cache != nil {
		s.CacheHits = e.cache.hits.Load()
	}
	return s
}

// Complete answers one prompt, consulting the cache first. The
// boolean reports whether the response was served from the cache
// (or coalesced onto an identical in-flight request) rather than by
// a fresh client call.
func (e *Engine) Complete(prompt string) (llm.Response, bool, error) {
	return e.CompleteContext(context.Background(), prompt)
}

// CompleteContext is Complete with cancellation: the context bounds
// the client call, its retries and their backoff sleeps, and passes
// through to context-aware clients so a deadline cancels in-flight
// work. Identical concurrent prompts still coalesce onto one call;
// that call runs under the context of whichever caller started it.
func (e *Engine) CompleteContext(ctx context.Context, prompt string) (llm.Response, bool, error) {
	if e.cache == nil {
		resp, err := e.chat(ctx, prompt)
		return resp, false, err
	}
	key := e.client.Name() + "\x00" + prompt
	resp, cached, err := e.cache.do(key, func() (llm.Response, error) {
		return e.chat(ctx, prompt)
	})
	if cached {
		e.opts.Metrics.CacheHits.Inc()
	}
	return resp, cached, err
}

// Peek returns the cached response for a prompt without issuing a
// client call or waiting for an in-flight one: only completed cached
// responses report true. It lets layers above the engine — e.g. the
// cross-request batching dispatcher — consult the per-prompt cache
// before deciding how to route a request. Always false when caching
// is disabled.
func (e *Engine) Peek(prompt string) (llm.Response, bool) {
	if e.cache == nil {
		return llm.Response{}, false
	}
	return e.cache.peek(e.client.Name() + "\x00" + prompt)
}

// Seed installs a response for a prompt as if the client had answered
// it, so later identical prompts are served from the cache. The
// batching dispatcher uses it to layer per-pair answers extracted
// from a batched reply onto the per-pair prompt cache. Existing and
// in-flight entries are left untouched; a no-op when caching is
// disabled.
func (e *Engine) Seed(prompt string, resp llm.Response) {
	if e.cache == nil {
		return
	}
	e.cache.seed(e.client.Name()+"\x00"+prompt, resp)
}

// chat performs one client call with transient-error retry. Retries
// sleep a full-jitter draw from [0, cap) where the cap doubles per
// attempt, unless the error carries a RetryAfter hint, which is
// honoured exactly. The context bounds attempts and sleeps alike.
func (e *Engine) chat(ctx context.Context, prompt string) (llm.Response, error) {
	e.clientCalls.Add(1)
	e.opts.Metrics.Calls.Inc()
	timed := e.opts.Metrics.CallSeconds != nil
	backoff := e.opts.Backoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return llm.Response{}, err
		}
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		resp, err := e.attempt(ctx, prompt)
		if timed {
			e.opts.Metrics.CallSeconds.ObserveSince(t0)
		}
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if attempt >= e.opts.MaxRetries || !IsTransient(err) {
			break
		}
		e.retries.Add(1)
		e.opts.Metrics.Retries.Inc()
		wait, hinted := RetryAfter(err)
		if !hinted {
			wait = time.Duration(e.rand() * float64(backoff))
		}
		if !e.sleepCtx(ctx, wait) {
			return llm.Response{}, ctx.Err()
		}
		backoff *= 2
	}
	return llm.Response{}, lastErr
}

// attempt issues one request, hedging a second identical one when the
// first is slower than Options.Hedge; the first response wins and the
// loser is left to finish (or be cancelled by ctx) in the background.
func (e *Engine) attempt(ctx context.Context, prompt string) (llm.Response, error) {
	msgs := []llm.Message{{Role: llm.User, Content: prompt}}
	if e.opts.Hedge <= 0 {
		return llm.ChatContext(ctx, e.client, msgs)
	}
	type result struct {
		resp llm.Response
		err  error
	}
	ch := make(chan result, 2)
	issue := func() {
		resp, err := llm.ChatContext(ctx, e.client, msgs)
		ch <- result{resp, err}
	}
	go issue()
	hedge := time.NewTimer(e.opts.Hedge)
	defer hedge.Stop()
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-ctx.Done():
		return llm.Response{}, ctx.Err()
	case <-hedge.C:
	}
	e.hedged.Add(1)
	e.opts.Metrics.Hedged.Inc()
	go issue()
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-ctx.Done():
		return llm.Response{}, ctx.Err()
	}
}

// sleepCtx waits d, returning false if the context expired first. A
// context without a deadline or cancel function takes the plain sleep
// path, which tests stub out.
func (e *Engine) sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	if ctx.Done() == nil {
		e.sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Decision is the outcome of matching one pair through the engine.
type Decision struct {
	// Index is the pair's position in the input slice, so streaming
	// consumers can restore input order.
	Index int
	// Pair is the evaluated pair.
	Pair entity.Pair
	// Prompt is the full prompt that was (or would have been) sent.
	Prompt string
	// Answer is the model's raw reply.
	Answer string
	// Match is the parsed decision.
	Match bool
	// Usage is the model's token and latency accounting. Cached
	// decisions carry the accounting of the original request.
	Usage llm.Response
	// Cached reports whether the response came from the prompt cache.
	Cached bool
}

// Match evaluates all pairs on the worker pool and returns decisions
// in input order. build renders the prompt for a pair and parse turns
// a model reply into a binary decision; both must be safe for
// concurrent use. The first error cancels outstanding work.
func (e *Engine) Match(pairs []entity.Pair, build func(entity.Pair) string, parse func(string) bool) ([]Decision, error) {
	return e.MatchContext(context.Background(), pairs, build, parse)
}

// MatchContext is Match with cancellation: the context bounds every
// client call issued for the pair set, so a deadline cancels the whole
// evaluation.
func (e *Engine) MatchContext(ctx context.Context, pairs []entity.Pair, build func(entity.Pair) string, parse func(string) bool) ([]Decision, error) {
	out := make([]Decision, len(pairs))
	err := ForEach(len(pairs), e.opts.Workers, func(i int) error {
		d, err := e.matchOne(ctx, i, pairs[i], build, parse)
		if err != nil {
			return err
		}
		out[i] = d
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stream evaluates all pairs on the worker pool and delivers
// decisions in completion order on the returned channel, which is
// closed when the run ends. wait blocks until then, returns the
// first error, and may be called any number of times. The channel is
// buffered for the full pair set, so workers never block on a slow
// (or absent) consumer: abandoning the channel early leaks nothing,
// though the remaining pairs are still evaluated.
func (e *Engine) Stream(pairs []entity.Pair, build func(entity.Pair) string, parse func(string) bool) (<-chan Decision, func() error) {
	out := make(chan Decision, len(pairs))
	errc := make(chan error, 1)
	go func() {
		errc <- ForEach(len(pairs), e.opts.Workers, func(i int) error {
			d, err := e.matchOne(context.Background(), i, pairs[i], build, parse)
			if err != nil {
				return err
			}
			out <- d
			return nil
		})
		close(out)
	}()
	var once sync.Once
	var err error
	return out, func() error {
		once.Do(func() { err = <-errc })
		return err
	}
}

func (e *Engine) matchOne(ctx context.Context, i int, pair entity.Pair, build func(entity.Pair) string, parse func(string) bool) (Decision, error) {
	p := build(pair)
	resp, cached, err := e.CompleteContext(ctx, p)
	if err != nil {
		return Decision{}, fmt.Errorf("pipeline: pair %s: %w", pair.ID, err)
	}
	return Decision{
		Index:  i,
		Pair:   pair,
		Prompt: p,
		Answer: resp.Content,
		Match:  parse(resp.Content),
		Usage:  resp,
		Cached: cached,
	}, nil
}

// Completion is one prompt-level result of CompleteAll.
type Completion struct {
	// Response is the model's reply.
	Response llm.Response
	// Cached reports whether it came from the prompt cache.
	Cached bool
}

// CompleteAll answers all prompts on the worker pool and returns
// completions in input order. The first error cancels outstanding
// work.
func (e *Engine) CompleteAll(prompts []string) ([]Completion, error) {
	out := make([]Completion, len(prompts))
	err := ForEach(len(prompts), e.opts.Workers, func(i int) error {
		resp, cached, err := e.Complete(prompts[i])
		if err != nil {
			return fmt.Errorf("pipeline: prompt %d: %w", i, err)
		}
		out[i] = Completion{Response: resp, Cached: cached}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForEach runs job(0..n-1) on a bounded worker pool and returns the
// first error. After an error no new jobs start, in-flight jobs are
// awaited, and the error is returned. workers <= 0 selects
// GOMAXPROCS, the right bound for CPU-bound local work; callers with
// latency-bound jobs should pass an explicit larger pool.
func ForEach(n, workers int, job func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		errOnce sync.Once
		firstEr error
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if stop.Load() {
					continue
				}
				if err := job(i); err != nil {
					errOnce.Do(func() { firstEr = err })
					stop.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n && !stop.Load(); i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return firstEr
}
