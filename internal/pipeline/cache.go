package pipeline

import (
	"container/list"
	"sync"
	"sync/atomic"

	"llm4em/internal/llm"
)

// promptCache is an LRU response cache with single-flight semantics:
// concurrent requests for the same key coalesce onto one client call,
// so a duplicated prompt never issues an extra model request — not
// even when both copies arrive at the same instant on different
// workers. Errors are not cached; the failed key is removed so a
// later request can retry it.
type promptCache struct {
	capacity int
	hits     atomic.Uint64

	mu      sync.Mutex
	entries map[string]*cacheEntry
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	key  string
	elem *list.Element
	// ready is closed once resp/err are filled in.
	ready chan struct{}
	resp  llm.Response
	err   error
}

func newPromptCache(capacity int) *promptCache {
	return &promptCache{
		capacity: capacity,
		entries:  map[string]*cacheEntry{},
		order:    list.New(),
	}
}

// do returns the cached response for key, waiting on an in-flight
// computation if one exists, or computes it with fn. The boolean
// reports whether the response was shared rather than freshly
// computed by this call.
func (c *promptCache) do(key string, fn func() (llm.Response, error)) (llm.Response, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.order.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return llm.Response{}, false, e.err
		}
		c.hits.Add(1)
		return e.resp, true, nil
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	e.elem = c.order.PushFront(e)
	c.entries[key] = e
	c.evictLocked()
	c.mu.Unlock()

	e.resp, e.err = fn()
	close(e.ready)
	if e.err != nil {
		c.remove(e)
		return llm.Response{}, false, e.err
	}
	return e.resp, false, nil
}

// evictLocked drops least-recently-used completed entries until the
// cache is within capacity. In-flight entries are skipped: evicting
// them would let an identical concurrent prompt slip past the
// single-flight guarantee and issue a duplicate model request.
func (c *promptCache) evictLocked() {
	for elem := c.order.Back(); elem != nil && c.order.Len() > c.capacity; {
		prev := elem.Prev()
		e := elem.Value.(*cacheEntry)
		done := true
		select {
		case <-e.ready:
		default:
			done = false
		}
		if done {
			c.order.Remove(elem)
			delete(c.entries, e.key)
		}
		elem = prev
	}
}

// peek returns the cached response for key without waiting: only
// completed successful entries report ok. In-flight computations are
// not joined — callers that want to wait use do.
func (c *promptCache) peek(key string) (llm.Response, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		return llm.Response{}, false
	}
	select {
	case <-e.ready:
	default:
		c.mu.Unlock()
		return llm.Response{}, false
	}
	if e.err != nil {
		c.mu.Unlock()
		return llm.Response{}, false
	}
	c.order.MoveToFront(e.elem)
	c.mu.Unlock()
	c.hits.Add(1)
	return e.resp, true
}

// seed installs a completed response for key as if a client call had
// produced it. Existing entries — completed or in-flight — are left
// untouched, so seeding never races a concurrent do on the same key.
func (c *promptCache) seed(key string, resp llm.Response) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	e := &cacheEntry{key: key, ready: make(chan struct{}), resp: resp}
	close(e.ready)
	e.elem = c.order.PushFront(e)
	c.entries[key] = e
	c.evictLocked()
}

// remove drops an entry (used for failed computations so the key can
// be retried).
func (c *promptCache) remove(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.entries[e.key]; ok && cur == e {
		c.order.Remove(e.elem)
		delete(c.entries, e.key)
	}
}

// len returns the number of resident entries.
func (c *promptCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
