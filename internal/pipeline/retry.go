package pipeline

import "errors"

// ErrTransient marks an error as retryable. Client implementations
// wrap rate limits, timeouts and 5xx-style failures with Transient so
// the engine retries them with backoff; all other errors fail fast.
var ErrTransient = errors.New("transient error")

// Transient wraps err so that IsTransient reports true. A nil err
// returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

type transientError struct{ err error }

func (t *transientError) Error() string { return "transient: " + t.err.Error() }

func (t *transientError) Unwrap() error { return t.err }

func (t *transientError) Is(target error) bool { return target == ErrTransient }

// Temporary implements the convention shared with net.Error.
func (t *transientError) Temporary() bool { return true }

// IsTransient reports whether an error should be retried: it wraps
// ErrTransient, or implements the net.Error-style
// Temporary() bool convention and reports true.
func IsTransient(err error) bool {
	if errors.Is(err, ErrTransient) {
		return true
	}
	var tmp interface{ Temporary() bool }
	return errors.As(err, &tmp) && tmp.Temporary()
}
