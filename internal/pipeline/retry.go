package pipeline

import (
	"errors"
	"time"
)

// ErrTransient marks an error as retryable. Client implementations
// wrap rate limits, timeouts and 5xx-style failures with Transient so
// the engine retries them with backoff; all other errors fail fast.
var ErrTransient = errors.New("transient error")

// Transient wraps err so that IsTransient reports true. A nil err
// returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// TransientAfter wraps err as transient and carries a retry-after
// hint, the way a 429 response carries a Retry-After header: the
// engine sleeps exactly the hinted duration before the next attempt
// instead of its jittered exponential backoff. A nil err returns nil;
// a non-positive hint is equivalent to Transient.
func TransientAfter(err error, retryAfter time.Duration) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err, retryAfter: retryAfter}
}

type transientError struct {
	err        error
	retryAfter time.Duration
}

func (t *transientError) Error() string { return "transient: " + t.err.Error() }

func (t *transientError) Unwrap() error { return t.err }

func (t *transientError) Is(target error) bool { return target == ErrTransient }

// Temporary implements the convention shared with net.Error.
func (t *transientError) Temporary() bool { return true }

// RetryAfter extracts the retry-after hint attached by TransientAfter,
// reporting false when err carries none.
func RetryAfter(err error) (time.Duration, bool) {
	var t *transientError
	if errors.As(err, &t) && t.retryAfter > 0 {
		return t.retryAfter, true
	}
	return 0, false
}

// IsTransient reports whether an error should be retried: it wraps
// ErrTransient, or implements the net.Error-style
// Temporary() bool convention and reports true.
func IsTransient(err error) bool {
	if errors.Is(err, ErrTransient) {
		return true
	}
	var tmp interface{ Temporary() bool }
	return errors.As(err, &tmp) && tmp.Temporary()
}
