package prompt

import (
	"strings"
	"testing"

	"llm4em/internal/entity"
)

func samplePair() entity.Pair {
	return entity.Pair{
		ID: "p1",
		A:  entity.Record{ID: "a", Attrs: []entity.Attr{{Name: "title", Value: "DYMO D1 Tape 12mm x 7m"}}},
		B:  entity.Record{ID: "b", Attrs: []entity.Attr{{Name: "title", Value: "DYMO D1 label tape 12mm"}}},
	}
}

func TestDesignsCoverPaperTable(t *testing.T) {
	want := []string{
		"domain-complex-force", "domain-complex-free",
		"domain-simple-force", "domain-simple-free",
		"general-complex-force", "general-complex-free",
		"general-simple-force", "general-simple-free",
		"Narayan-complex", "Narayan-simple",
	}
	ds := Designs()
	if len(ds) != len(want) {
		t.Fatalf("got %d designs, want %d", len(ds), len(want))
	}
	for i, name := range want {
		if ds[i].Name != name {
			t.Errorf("design %d = %q, want %q", i, ds[i].Name, name)
		}
	}
}

func TestDesignByName(t *testing.T) {
	d, err := DesignByName("general-complex-free")
	if err != nil {
		t.Fatal(err)
	}
	if d.Scope != GeneralScope || d.Wording != Complex || d.Format != Free {
		t.Errorf("unexpected design %+v", d)
	}
	if _, err := DesignByName("bogus"); err == nil {
		t.Error("unknown design should error")
	}
}

func TestTaskDescriptionsMatchPaperWording(t *testing.T) {
	tests := []struct {
		design string
		domain entity.Domain
		want   string
	}{
		{"domain-simple-force", entity.Product, "Do the two product descriptions match?"},
		{"domain-simple-force", entity.Publication, "Do the two publications match?"},
		{"domain-complex-free", entity.Product, "Do the two product descriptions refer to the same real-world product?"},
		{"domain-complex-free", entity.Publication, "Do the two publications refer to the same real-world publication?"},
		{"general-simple-free", entity.Product, "Do the two entity descriptions match?"},
		{"general-complex-force", entity.Publication, "Do the two entity descriptions refer to the same real-world entity?"},
	}
	for _, tt := range tests {
		d, err := DesignByName(tt.design)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.TaskDescription(tt.domain); got != tt.want {
			t.Errorf("%s/%s: %q, want %q", tt.design, tt.domain, got, tt.want)
		}
	}
}

func TestForcePromptContainsInstruction(t *testing.T) {
	d, _ := DesignByName("general-complex-force")
	s := Spec{Design: d, Domain: entity.Product}
	p := s.Build(samplePair())
	if !strings.Contains(p, ForceInstruction) {
		t.Error("force prompt must contain the Yes/No instruction")
	}
	dFree, _ := DesignByName("general-complex-free")
	pf := Spec{Design: dFree, Domain: entity.Product}.Build(samplePair())
	if strings.Contains(pf, ForceInstruction) {
		t.Error("free prompt must not contain the Yes/No instruction")
	}
}

func TestPromptContainsBothSerializations(t *testing.T) {
	for _, d := range Designs() {
		p := Spec{Design: d, Domain: entity.Product}.Build(samplePair())
		if !strings.Contains(p, "DYMO D1 Tape 12mm x 7m") || !strings.Contains(p, "DYMO D1 label tape 12mm") {
			t.Errorf("%s: prompt misses a serialization:\n%s", d.Name, p)
		}
	}
}

func TestEntityLabels(t *testing.T) {
	dGeneral, _ := DesignByName("general-simple-free")
	a, b := dGeneral.EntityLabels(entity.Product)
	if a != "Entity 1" || b != "Entity 2" {
		t.Errorf("general labels = %q, %q", a, b)
	}
	dDomain, _ := DesignByName("domain-simple-free")
	a, b = dDomain.EntityLabels(entity.Product)
	if a != "Product 1" || b != "Product 2" {
		t.Errorf("product labels = %q, %q", a, b)
	}
	a, b = dDomain.EntityLabels(entity.Publication)
	if a != "Publication 1" || b != "Publication 2" {
		t.Errorf("publication labels = %q, %q", a, b)
	}
	dN, _ := DesignByName("Narayan-simple")
	a, b = dN.EntityLabels(entity.Product)
	if a != "Product A" || b != "Product B" {
		t.Errorf("Narayan labels = %q, %q", a, b)
	}
}

func TestDemonstrationsRendered(t *testing.T) {
	demoPos := entity.Pair{
		A: entity.Record{Attrs: []entity.Attr{{Name: "title", Value: "alpha one"}}},
		B: entity.Record{Attrs: []entity.Attr{{Name: "title", Value: "alpha 1"}}}, Match: true,
	}
	demoNeg := entity.Pair{
		A: entity.Record{Attrs: []entity.Attr{{Name: "title", Value: "beta two"}}},
		B: entity.Record{Attrs: []entity.Attr{{Name: "title", Value: "gamma three"}}}, Match: false,
	}
	d, _ := DesignByName("general-complex-force")
	p := Spec{Design: d, Domain: entity.Product, Demonstrations: []entity.Pair{demoPos, demoNeg}}.Build(samplePair())
	if !strings.Contains(p, "alpha one") || !strings.Contains(p, "Answer: Yes") {
		t.Error("positive demonstration not rendered")
	}
	if !strings.Contains(p, "gamma three") || !strings.Contains(p, "Answer: No") {
		t.Error("negative demonstration not rendered")
	}
	if !strings.HasSuffix(p, "Answer:") {
		t.Error("few-shot prompt should end with an answer slot")
	}
	// Demonstrations must precede the query pair (Figure 2).
	if strings.Index(p, "alpha one") > strings.Index(p, "DYMO D1 Tape") {
		t.Error("demonstrations must come before the query")
	}
}

func TestRulesRendered(t *testing.T) {
	d, _ := DesignByName("domain-complex-force")
	rules := []string{"The brands must match.", "Model numbers must be identical."}
	p := Spec{Design: d, Domain: entity.Product, Rules: rules}.Build(samplePair())
	for _, r := range rules {
		if !strings.Contains(p, r) {
			t.Errorf("rule %q not rendered", r)
		}
	}
	if !strings.Contains(p, "1. The brands must match.") {
		t.Error("rules should be numbered")
	}
}

func TestZeroShotPromptHasNoAnswerSlot(t *testing.T) {
	d, _ := DesignByName("general-complex-free")
	p := Spec{Design: d, Domain: entity.Product}.Build(samplePair())
	if strings.Contains(p, "Answer:") {
		t.Error("zero-shot prompt should not contain an answer slot")
	}
}

func TestErrorClassRequest(t *testing.T) {
	p := ErrorClassRequest("false positive", entity.Publication, []string{"case one", "case two"})
	for _, want := range []string{"false positive", "publications", "5 error classes", "Case 1:", "case two"} {
		if !strings.Contains(p, want) {
			t.Errorf("ErrorClassRequest misses %q", want)
		}
	}
}

func TestErrorAssignRequest(t *testing.T) {
	p := ErrorAssignRequest([]string{"Year Discrepancy: years differ", "Venue Variability: venue forms differ"}, "the case")
	for _, want := range []string{"1. Year Discrepancy", "2. Venue Variability", "confidence", "the case"} {
		if !strings.Contains(p, want) {
			t.Errorf("ErrorAssignRequest misses %q", want)
		}
	}
}

func TestExplanationRequestMentionsStructure(t *testing.T) {
	for _, want := range []string{"attribute | importance | similarity", "-1 and 1", "0 and 1"} {
		if !strings.Contains(ExplanationRequest, want) {
			t.Errorf("ExplanationRequest misses %q", want)
		}
	}
}
