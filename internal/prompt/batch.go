package prompt

import (
	"fmt"
	"strings"

	"llm4em/internal/entity"
)

// BatchInstruction is the task description of batched matching
// prompts: several pairs are decided in one request, the
// cost-reduction technique of Fan et al. discussed in the paper's
// related work (Section 8).
const BatchInstruction = "For each of the following pairs, decide whether the two entity descriptions refer to the same real-world entity. Answer with one line per pair in the format '<pair number>. Yes' or '<pair number>. No'."

// BuildBatch renders a batched matching prompt for the given pairs.
func BuildBatch(domain entity.Domain, pairs []entity.Pair) string {
	var b strings.Builder
	b.WriteString(BatchInstruction)
	b.WriteString("\n")
	for i, p := range pairs {
		fmt.Fprintf(&b, "Pair %d:\n", i+1)
		fmt.Fprintf(&b, "Entity 1: '%s'\nEntity 2: '%s'\n", p.A.Serialize(), p.B.Serialize())
	}
	return strings.TrimRight(b.String(), "\n")
}
