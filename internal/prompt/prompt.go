// Package prompt constructs the prompts of the paper from reusable
// building blocks (Section 3): a task description (domain/general ×
// simple/complex wording, plus the two designs of Narayan et al.), an
// optional output-format instruction (free vs force), optional
// in-context demonstrations (Section 4.1, Figure 2), optional textual
// matching rules (Section 4.2, Figure 3), and the serialized entity
// pair. It also renders the second-turn explanation prompts of
// Section 6 and the error-analysis prompts of Section 7.
package prompt

import (
	"fmt"
	"strings"

	"llm4em/internal/entity"
)

// Wording selects between the simple and complex formulation of the
// matching question.
type Wording string

// Wordings of the task description.
const (
	Simple  Wording = "simple"
	Complex Wording = "complex"
)

// Scope selects between domain-specific and general task phrasing.
type Scope string

// Scopes of the task description.
const (
	DomainScope  Scope = "domain"
	GeneralScope Scope = "general"
)

// Format selects the output-format instruction.
type Format string

// Output formats: free places no restriction on the answer; force
// instructs the model to answer exactly "Yes" or "No".
const (
	Free  Format = "free"
	Force Format = "force"
)

// Design identifies one of the ten zero-shot prompt designs evaluated
// in Tables 2 and 3.
type Design struct {
	// Name is the design identifier used in the paper's tables, e.g.
	// "general-complex-free" or "Narayan-simple".
	Name string
	// Scope and Wording select the task description; they are unset
	// for the Narayan designs.
	Scope   Scope
	Wording Wording
	// Format is the output-format instruction.
	Format Format
	// Narayan marks the two designs adopted from Narayan et al.
	Narayan bool
}

// Designs returns the ten prompt designs of the zero-shot study in
// the paper's presentation order.
func Designs() []Design {
	return []Design{
		{Name: "domain-complex-force", Scope: DomainScope, Wording: Complex, Format: Force},
		{Name: "domain-complex-free", Scope: DomainScope, Wording: Complex, Format: Free},
		{Name: "domain-simple-force", Scope: DomainScope, Wording: Simple, Format: Force},
		{Name: "domain-simple-free", Scope: DomainScope, Wording: Simple, Format: Free},
		{Name: "general-complex-force", Scope: GeneralScope, Wording: Complex, Format: Force},
		{Name: "general-complex-free", Scope: GeneralScope, Wording: Complex, Format: Free},
		{Name: "general-simple-force", Scope: GeneralScope, Wording: Simple, Format: Force},
		{Name: "general-simple-free", Scope: GeneralScope, Wording: Simple, Format: Free},
		{Name: "Narayan-complex", Format: Free, Narayan: true, Wording: Complex},
		{Name: "Narayan-simple", Format: Free, Narayan: true, Wording: Simple},
	}
}

// DesignByName returns the design with the given table name.
func DesignByName(name string) (Design, error) {
	for _, d := range Designs() {
		if d.Name == name {
			return d, nil
		}
	}
	return Design{}, fmt.Errorf("prompt: unknown design %q", name)
}

// TaskDescription renders the matching question of a design for a
// topical domain.
func (d Design) TaskDescription(domain entity.Domain) string {
	if d.Narayan {
		// The designs of Narayan et al. phrase the task as a product
		// question with an inline answer slot.
		if d.Wording == Complex {
			return "Are Product A and Product B the same? Consider carefully whether the two entries refer to the same real-world entity, taking all attributes into account."
		}
		return "Are Product A and Product B the same?"
	}
	noun := "entity descriptions"
	if d.Scope == DomainScope {
		noun = domain.Noun()
	}
	if d.Wording == Simple {
		return fmt.Sprintf("Do the two %s match?", noun)
	}
	thing := "entity"
	switch {
	case d.Scope == DomainScope && domain == entity.Product:
		thing = "product"
	case d.Scope == DomainScope && domain == entity.Publication:
		thing = "publication"
	}
	return fmt.Sprintf("Do the two %s refer to the same real-world %s?", noun, thing)
}

// ForceInstruction is the output-format instruction of the force
// format, quoted verbatim from the paper.
const ForceInstruction = "Answer with 'Yes' if they do and 'No' if they do not."

// EntityLabels returns the labels used to introduce the two
// serialized descriptions for a design and domain ("Entity 1"/"Entity
// 2", "Product 1"/..., or Narayan's "Product A"/"Product B").
func (d Design) EntityLabels(domain entity.Domain) (a, b string) {
	if d.Narayan {
		return "Product A", "Product B"
	}
	switch {
	case d.Scope == DomainScope && domain == entity.Product:
		return "Product 1", "Product 2"
	case d.Scope == DomainScope && domain == entity.Publication:
		return "Publication 1", "Publication 2"
	default:
		return "Entity 1", "Entity 2"
	}
}

// Spec bundles everything needed to build one matching prompt.
type Spec struct {
	// Design and Domain select the prompt design and the topical
	// domain its task description speaks about.
	Design Design
	Domain entity.Domain
	// Demonstrations are optional labelled pairs shown before the
	// query (in-context learning, Section 4.1).
	Demonstrations []entity.Pair
	// Rules are optional textual matching rules (Section 4.2).
	Rules []string
}

// Build renders the complete prompt for the given pair under the
// spec. The layout follows Figures 1-3 of the paper: task description,
// optional format instruction, optional rules, optional
// demonstrations (each a pair plus its gold answer), then the query
// pair.
func (s Spec) Build(pair entity.Pair) string {
	var b strings.Builder
	task := s.Design.TaskDescription(s.Domain)
	b.WriteString(task)
	if s.Design.Format == Force {
		b.WriteByte(' ')
		b.WriteString(ForceInstruction)
	}
	b.WriteString("\n")

	if len(s.Rules) > 0 {
		b.WriteString("Apply the following rules when making your decision:\n")
		for i, r := range s.Rules {
			fmt.Fprintf(&b, "%d. %s\n", i+1, r)
		}
	}

	la, lb := s.Design.EntityLabels(s.Domain)
	for _, demo := range s.Demonstrations {
		fmt.Fprintf(&b, "%s: '%s'\n%s: '%s'\n", la, demo.A.Serialize(), lb, demo.B.Serialize())
		if demo.Match {
			b.WriteString("Answer: Yes\n")
		} else {
			b.WriteString("Answer: No\n")
		}
	}

	fmt.Fprintf(&b, "%s: '%s'\n%s: '%s'", la, pair.A.Serialize(), lb, pair.B.Serialize())
	if len(s.Demonstrations) > 0 {
		b.WriteString("\nAnswer:")
	}
	return b.String()
}

// ExplanationRequest is the second-turn prompt of Section 6.1 asking
// for a structured explanation of the preceding matching decision.
const ExplanationRequest = "Explain your decision. Structure the explanation as a list of the attributes that you used for your decision. List one attribute per line in the format attribute | importance | similarity, where importance is a value between -1 and 1 whose sign indicates whether the attribute comparison contributed to a non-match or match decision, and similarity is a value between 0 and 1 describing how similar the two attribute values are."

// ErrorClassRequest renders the Section 7.1 prompt asking the model
// to synthesise error classes from wrong decisions and their
// structured explanations. kind is "false positive" or "false
// negative"; cases holds one rendered block per wrong decision.
func ErrorClassRequest(kind string, domain entity.Domain, cases []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "You are analyzing the errors of an entity matching system for %s.\n", domain.Noun())
	fmt.Fprintf(&b, "Below are %s cases: entity pairs for which the system made a wrong decision, together with a structured explanation of each decision.\n", kind)
	fmt.Fprintf(&b, "Derive a list of 5 error classes that describe common causes of these %s errors. For each class, give a short name and a one-sentence description.\n\n", kind)
	for i, c := range cases {
		fmt.Fprintf(&b, "Case %d:\n%s\n", i+1, c)
	}
	return b.String()
}

// ErrorAssignRequest renders the Section 7.2 prompt asking the model
// to assign one wrong decision to the given error classes.
func ErrorAssignRequest(classes []string, renderedCase string) string {
	var b strings.Builder
	b.WriteString("Given the following error classes for an entity matching system:\n")
	for i, c := range classes {
		fmt.Fprintf(&b, "%d. %s\n", i+1, c)
	}
	b.WriteString("Decide for the following wrongly matched pair which of the error classes apply. List all applicable class numbers with a confidence value between 0 and 1 for each.\n\n")
	b.WriteString("Case 1:\n")
	b.WriteString(renderedCase)
	return b.String()
}
