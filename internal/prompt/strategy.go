package prompt

import (
	"fmt"
	"strings"

	"llm4em/internal/entity"
)

// Strategy selects the prompt formulation for a query's uncertain
// candidate band — the tiered alternatives of "Match, Compare, or
// Select?" (Wang et al.): independent pairwise match prompts, one
// compare prompt ranking all candidates against the query side by
// side, or one select prompt picking the best match (or "none") from
// the candidate set. Compare and select answer a whole candidate
// group in a single round-trip, so they cut LLM calls per escalated
// query from k to 1.
type Strategy string

// Strategies of the uncertain band, in pairwise-to-grouped order.
const (
	// StrategyMatch sends one independent pairwise matching prompt per
	// uncertain pair — the paper's baseline formulation.
	StrategyMatch Strategy = "match"
	// StrategyCompare sends one prompt per query listing every
	// uncertain candidate and asks for a Yes/No verdict on each,
	// letting the model weigh the candidates against each other.
	StrategyCompare Strategy = "compare"
	// StrategySelect sends one prompt per query asking which single
	// candidate — if any — matches; every other candidate is a No.
	StrategySelect Strategy = "select"
)

// Strategies returns the uncertain-band strategies in the order of
// the ablation tables.
func Strategies() []Strategy {
	return []Strategy{StrategyMatch, StrategyCompare, StrategySelect}
}

// ParseStrategy maps a flag value to a Strategy. The empty string
// selects StrategyMatch, the default.
func ParseStrategy(name string) (Strategy, error) {
	switch Strategy(name) {
	case "", StrategyMatch:
		return StrategyMatch, nil
	case StrategyCompare:
		return StrategyCompare, nil
	case StrategySelect:
		return StrategySelect, nil
	}
	return "", fmt.Errorf("prompt: unknown strategy %q (want match, compare or select)", name)
}

// CompareInstruction is the task description of compare prompts: all
// of a query's uncertain candidates in one request, one verdict per
// candidate. The leading words are the classification prefix the
// simulated models key on.
const CompareInstruction = "Compare each candidate against the query and against the other candidates, and decide for every candidate whether it describes the same real-world entity as the query. Answer with one line per candidate in the format '<candidate number>. Yes' or '<candidate number>. No'."

// SelectInstruction is the task description of select prompts: pick
// the single matching candidate, or none.
const SelectInstruction = "Select the candidate that describes the same real-world entity as the query, if any. Answer with a single line in the format 'Answer: <candidate number>', or 'Answer: none' if no candidate matches."

// ReasonInstruction is the task description of the structured
// multi-step reasoning prompt (the reason tier): attribute listing,
// pairwise attribute comparison, evidence weighing, then a final
// verdict line.
const ReasonInstruction = "Decide step by step whether the two entity descriptions refer to the same real-world entity. First list the key attributes of each description, then compare the attributes one by one, then weigh the matching and conflicting evidence. Conclude with a final line in the format 'Final Answer: Yes' or 'Final Answer: No'."

// BuildCompare renders a compare prompt: the query followed by its
// numbered candidates.
func BuildCompare(domain entity.Domain, query entity.Record, candidates []entity.Record) string {
	return buildGroup(CompareInstruction, query, candidates)
}

// BuildSelect renders a select prompt over the query's candidates.
func BuildSelect(domain entity.Domain, query entity.Record, candidates []entity.Record) string {
	return buildGroup(SelectInstruction, query, candidates)
}

// buildGroup renders the shared grouped-prompt layout of compare and
// select: instruction, query line, numbered candidate lines.
func buildGroup(instruction string, query entity.Record, candidates []entity.Record) string {
	var b strings.Builder
	b.WriteString(instruction)
	b.WriteString("\n")
	fmt.Fprintf(&b, "Query: '%s'\n", query.Serialize())
	for i, c := range candidates {
		fmt.Fprintf(&b, "Candidate %d: '%s'\n", i+1, c.Serialize())
	}
	return strings.TrimRight(b.String(), "\n")
}

// BuildReason renders the structured multi-step reasoning prompt for
// one pair — the reason tier's second pass over pairs the first LLM
// pass left uncertain.
func BuildReason(domain entity.Domain, pair entity.Pair) string {
	var b strings.Builder
	b.WriteString(ReasonInstruction)
	b.WriteString("\n")
	fmt.Fprintf(&b, "Entity 1: '%s'\nEntity 2: '%s'", pair.A.Serialize(), pair.B.Serialize())
	return b.String()
}
