// Package detrand provides deterministic pseudo-randomness for the
// simulation substrate. All stochastic behaviour in the repository —
// dataset generation, simulated model noise, prompt-sensitivity
// jitter — is derived from stable string keys through the functions in
// this package, so every experiment is exactly reproducible across
// runs, machines and Go versions. Neither time nor the global
// math/rand state is ever consulted.
package detrand

import (
	"hash/fnv"
	"math"
)

// Hash64 returns the 64-bit FNV-1a hash of the concatenation of parts,
// with a single zero byte inserted between consecutive parts so that
// ("ab","c") and ("a","bc") hash differently.
func Hash64(parts ...string) uint64 {
	h := fnv.New64a()
	for i, p := range parts {
		if i > 0 {
			h.Write([]byte{0})
		}
		h.Write([]byte(p))
	}
	return h.Sum64()
}

// splitmix64 advances and scrambles a 64-bit state. It is the standard
// SplitMix64 finalizer, which passes BigCrush and is the recommended
// seeder for xoshiro-family generators.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Unit maps the given key parts to a float64 in [0, 1). Equal keys
// always map to equal values.
func Unit(parts ...string) float64 {
	return float64(splitmix64(Hash64(parts...))>>11) / float64(1<<53)
}

// Signed maps the given key parts to a float64 in [-1, 1).
func Signed(parts ...string) float64 {
	return 2*Unit(parts...) - 1
}

// Gauss maps the given key parts to a standard-normal deviate using the
// Box-Muller transform over two independent uniform draws derived from
// the key.
func Gauss(parts ...string) float64 {
	seed := Hash64(parts...)
	u1 := float64(splitmix64(seed)>>11) / float64(1<<53)
	u2 := float64(splitmix64(seed+1)>>11) / float64(1<<53)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// RNG is a small deterministic pseudo-random generator (SplitMix64
// stream). The zero value is a valid generator seeded with zero;
// prefer New to derive the seed from a string key.
type RNG struct {
	state uint64
}

// New returns an RNG seeded from the hash of the given key parts.
func New(parts ...string) *RNG {
	return &RNG{state: Hash64(parts...)}
}

// NewSeed returns an RNG with an explicit numeric seed.
func NewSeed(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns the next value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("detrand: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Gauss returns the next standard-normal deviate.
func (r *RNG) Gauss() float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Pick returns a pseudo-randomly chosen element of items. It panics if
// items is empty.
func Pick[T any](r *RNG, items []T) T {
	return items[r.Intn(len(items))]
}

// Shuffle permutes items in place using the Fisher-Yates algorithm.
func Shuffle[T any](r *RNG, items []T) {
	for i := len(items) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		items[i], items[j] = items[j], items[i]
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	Shuffle(r, p)
	return p
}

// Sample returns k distinct pseudo-randomly chosen elements of items,
// preserving no particular order. If k >= len(items) a shuffled copy of
// all items is returned.
func Sample[T any](r *RNG, items []T, k int) []T {
	cp := make([]T, len(items))
	copy(cp, items)
	Shuffle(r, cp)
	if k > len(cp) {
		k = len(cp)
	}
	return cp[:k]
}
