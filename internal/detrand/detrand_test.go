package detrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	if Hash64("a", "b") != Hash64("a", "b") {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64("ab", "c") == Hash64("a", "bc") {
		t.Fatal("Hash64 does not separate part boundaries")
	}
	if Hash64("x") == Hash64("y") {
		t.Fatal("Hash64 collides on trivial inputs")
	}
}

func TestUnitRange(t *testing.T) {
	f := func(a, b string) bool {
		u := Unit(a, b)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSignedRange(t *testing.T) {
	f := func(a string) bool {
		s := Signed(a)
		return s >= -1 && s < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGaussFinite(t *testing.T) {
	f := func(a string) bool {
		g := Gauss(a)
		return !math.IsNaN(g) && !math.IsInf(g, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGaussMoments(t *testing.T) {
	r := New("gauss-moments")
	n := 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		g := r.Gauss()
		sum += g
		sumsq += g * g
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("mean = %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("variance = %.4f, want ~1", variance)
	}
}

func TestRNGDeterministicStreams(t *testing.T) {
	a, b := New("seed"), New("seed")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
	c := New("other-seed")
	same := true
	a = New("seed")
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New("intn")
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New("p").Intn(0)
}

func TestFloat64Uniformity(t *testing.T) {
	r := New("uniform")
	buckets := make([]int, 10)
	n := 50000
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*10)]++
	}
	for i, c := range buckets {
		frac := float64(c) / float64(n)
		if frac < 0.08 || frac > 0.12 {
			t.Errorf("bucket %d has fraction %.3f, want ~0.1", i, frac)
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New("shuffle")
	items := []int{1, 2, 3, 4, 5, 6, 7, 8}
	cp := make([]int, len(items))
	copy(cp, items)
	Shuffle(r, cp)
	seen := map[int]int{}
	for _, v := range cp {
		seen[v]++
	}
	for _, v := range items {
		if seen[v] != 1 {
			t.Fatalf("element %d occurs %d times after shuffle", v, seen[v])
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New("perm")
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSample(t *testing.T) {
	r := New("sample")
	items := []string{"a", "b", "c", "d", "e"}
	s := Sample(r, items, 3)
	if len(s) != 3 {
		t.Fatalf("Sample returned %d items, want 3", len(s))
	}
	seen := map[string]bool{}
	valid := map[string]bool{"a": true, "b": true, "c": true, "d": true, "e": true}
	for _, v := range s {
		if !valid[v] || seen[v] {
			t.Fatalf("invalid sample %v", s)
		}
		seen[v] = true
	}
	all := Sample(r, items, 10)
	if len(all) != len(items) {
		t.Fatalf("oversized Sample returned %d items, want %d", len(all), len(items))
	}
}

func TestBoolProbability(t *testing.T) {
	r := New("bool")
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("Bool(0.3) hit fraction %.3f, want ~0.3", frac)
	}
}

func TestPick(t *testing.T) {
	r := New("pick")
	items := []int{10, 20, 30}
	for i := 0; i < 100; i++ {
		v := Pick(r, items)
		if v != 10 && v != 20 && v != 30 {
			t.Fatalf("Pick returned %d, not in items", v)
		}
	}
}

func TestNewSeedStream(t *testing.T) {
	a, b := NewSeed(42), NewSeed(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("NewSeed streams diverge")
		}
	}
	if NewSeed(1).Uint64() == NewSeed(2).Uint64() {
		t.Error("different numeric seeds should differ")
	}
}
