// Package resilience provides the fault-tolerance primitives wrapped
// around the LLM escalation path: a circuit breaker that fails fast
// during backend outages and a load-shedder that bounds concurrent
// escalations and their wait queue. Both are stdlib-only, allocation-
// free on the happy path, and deterministic under an injected clock so
// the chaos harness (internal/chaos) can drive them reproducibly.
package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"llm4em/internal/telemetry"
)

// ErrOpen is returned (wrapped) when the circuit breaker rejects a
// request without attempting it. It is deliberately NOT transient in
// the pipeline sense: retrying immediately would defeat the point of
// failing fast, so the retry loop gives up on first sight of it.
var ErrOpen = errors.New("resilience: circuit breaker open")

// State is a circuit breaker state.
type State int32

// Breaker states. The numeric values are exported on the
// em_llm_breaker_state gauge, so they are part of the observable
// contract: 0=closed, 1=half-open, 2=open.
const (
	Closed State = iota
	HalfOpen
	Open
)

// String returns the state's dashboard name.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	}
	return "unknown"
}

// BreakerOptions configures a Breaker. The zero value of every field
// selects a sensible default (see withDefaults).
type BreakerOptions struct {
	// ConsecutiveFailures trips the breaker after this many back-to-back
	// failures regardless of the windowed error rate (default 5).
	ConsecutiveFailures int
	// ErrorRate trips the breaker when the failure fraction over the
	// rolling window reaches this value (default 0.5), provided at
	// least MinSamples results landed in the window (default 20).
	ErrorRate  float64
	MinSamples int
	// Window is the rolling error-rate window (default 10s), realised
	// as two rotating half-window buckets.
	Window time.Duration
	// Cooldown is how long an open breaker waits before letting
	// half-open probes through (default 2s).
	Cooldown time.Duration
	// HalfOpenProbes is how many trial requests one half-open period
	// admits (default 1). The first probe failure re-opens; a probe
	// success closes.
	HalfOpenProbes int
	// Clock supplies the current time (default time.Now); tests and the
	// chaos harness inject a fake for determinism.
	Clock func() time.Time
	// Metrics receives breaker state and trip counts; zero value
	// disabled.
	Metrics telemetry.ResilienceMetrics
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.ConsecutiveFailures <= 0 {
		o.ConsecutiveFailures = 5
	}
	if o.ErrorRate <= 0 {
		o.ErrorRate = 0.5
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 20
	}
	if o.Window <= 0 {
		o.Window = 10 * time.Second
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 2 * time.Second
	}
	if o.HalfOpenProbes <= 0 {
		o.HalfOpenProbes = 1
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// bucket is one half-window of request outcomes.
type bucket struct {
	start    time.Time
	total    int
	failures int
}

// Breaker is a closed/open/half-open circuit breaker. Callers ask
// Allow before a request and Report the outcome after; both are
// cheap (one mutex) and allocation-free. Context cancellation errors
// reported to it are ignored — a caller giving up says nothing about
// backend health.
type Breaker struct {
	opts BreakerOptions

	mu       sync.Mutex
	state    State
	consec   int    // consecutive failures while closed
	cur      bucket // rotating half-window buckets
	prev     bucket
	openedAt time.Time
	probes   int // probes admitted this half-open period

	trips atomic.Uint64
}

// NewBreaker builds a closed breaker.
func NewBreaker(opts BreakerOptions) *Breaker {
	b := &Breaker{opts: opts.withDefaults()}
	b.cur.start = b.opts.Clock()
	b.opts.Metrics.BreakerState.Set(int64(Closed))
	return b
}

// Allow reports whether a request may proceed right now. An open
// breaker whose cooldown has elapsed transitions to half-open and
// admits up to HalfOpenProbes trial requests; everything else is
// rejected until a probe closes it again.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.opts.Clock().Sub(b.openedAt) < b.opts.Cooldown {
			return false
		}
		b.setStateLocked(HalfOpen)
		b.probes = 0
		fallthrough
	case HalfOpen:
		if b.probes >= b.opts.HalfOpenProbes {
			return false
		}
		b.probes++
		return true
	}
	return true
}

// Report records the outcome of a request previously admitted by
// Allow. A nil err is a success; context cancellation and deadline
// errors are ignored entirely.
func (b *Breaker) Report(err error) {
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		if err != nil {
			b.tripLocked()
			return
		}
		b.setStateLocked(Closed)
		b.consec = 0
		now := b.opts.Clock()
		b.cur = bucket{start: now}
		b.prev = bucket{}
	case Closed:
		b.rotateLocked()
		b.cur.total++
		if err == nil {
			b.consec = 0
			return
		}
		b.cur.failures++
		b.consec++
		if b.consec >= b.opts.ConsecutiveFailures {
			b.tripLocked()
			return
		}
		total := b.cur.total + b.prev.total
		failures := b.cur.failures + b.prev.failures
		if total >= b.opts.MinSamples && float64(failures) >= b.opts.ErrorRate*float64(total) {
			b.tripLocked()
		}
	case Open:
		// A late result from a request admitted before the trip; the
		// window restarts when the breaker closes, so drop it.
	}
}

// rotateLocked advances the two half-window buckets past stale time.
func (b *Breaker) rotateLocked() {
	half := b.opts.Window / 2
	now := b.opts.Clock()
	for now.Sub(b.cur.start) >= half {
		b.prev = b.cur
		b.cur = bucket{start: b.cur.start.Add(half)}
		// If the breaker sat idle for more than a full window, fast-
		// forward instead of looping per half-window.
		if now.Sub(b.cur.start) >= b.opts.Window {
			b.prev = bucket{}
			b.cur = bucket{start: now}
		}
	}
}

func (b *Breaker) tripLocked() {
	b.setStateLocked(Open)
	b.openedAt = b.opts.Clock()
	b.consec = 0
	b.trips.Add(1)
	b.opts.Metrics.BreakerTrips.Inc()
}

func (b *Breaker) setStateLocked(s State) {
	if b.state == s {
		return
	}
	b.state = s
	b.opts.Metrics.BreakerState.Set(int64(s))
}

// State returns the breaker's current state, promoting an open breaker
// whose cooldown has elapsed to half-open (so observers and fast-path
// checks see the same state a concurrent Allow would).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.opts.Clock().Sub(b.openedAt) >= b.opts.Cooldown {
		b.setStateLocked(HalfOpen)
		b.probes = 0
	}
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() uint64 { return b.trips.Load() }
