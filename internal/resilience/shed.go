package resilience

import (
	"context"
	"errors"
	"sync/atomic"

	"llm4em/internal/telemetry"
)

// ErrShed is returned (wrapped) when the load-shedder rejects work
// because both the concurrency limit and the wait queue are full.
// Servers map it to 503 with a Retry-After hint.
var ErrShed = errors.New("resilience: overloaded, escalation shed")

// ShedOptions configures a Shedder.
type ShedOptions struct {
	// MaxConcurrent bounds escalations running at once (default 64).
	MaxConcurrent int
	// MaxQueue bounds callers waiting for a slot (default 256); the
	// MaxQueue+1'th waiter is shed immediately rather than queued.
	MaxQueue int
	// Metrics receives the shed counter; zero value disabled.
	Metrics telemetry.ResilienceMetrics
}

func (o ShedOptions) withDefaults() ShedOptions {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 64
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 256
	}
	return o
}

// Shedder is a concurrency limiter with a bounded wait queue: up to
// MaxConcurrent acquisitions proceed, up to MaxQueue more wait (still
// honouring their context), and everyone beyond that is rejected with
// ErrShed. Acquire/Release are allocation-free.
type Shedder struct {
	opts    ShedOptions
	slots   chan struct{} // buffered; a held token = a running escalation
	waiting atomic.Int64
	shed    atomic.Uint64
}

// NewShedder builds a Shedder.
func NewShedder(opts ShedOptions) *Shedder {
	opts = opts.withDefaults()
	return &Shedder{
		opts:  opts,
		slots: make(chan struct{}, opts.MaxConcurrent),
	}
}

// Acquire takes a concurrency slot, waiting in the bounded queue if
// none is free. It returns ErrShed (wrapped) when the queue is full
// and ctx.Err() when the caller's context expires while waiting.
// Every nil return must be paired with exactly one Release.
func (s *Shedder) Acquire(ctx context.Context) error {
	select {
	case s.slots <- struct{}{}:
		return nil
	default:
	}
	if s.waiting.Add(1) > int64(s.opts.MaxQueue) {
		s.waiting.Add(-1)
		s.shed.Add(1)
		s.opts.Metrics.Shed.Inc()
		return ErrShed
	}
	defer s.waiting.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot taken by a successful Acquire.
func (s *Shedder) Release() { <-s.slots }

// InFlight returns the number of currently held slots.
func (s *Shedder) InFlight() int { return len(s.slots) }

// Waiting returns the number of callers queued for a slot.
func (s *Shedder) Waiting() int { return int(s.waiting.Load()) }

// Shed returns how many acquisitions have been rejected.
func (s *Shedder) Shed() uint64 { return s.shed.Load() }
