package resilience

import (
	"context"
	"fmt"

	"llm4em/internal/llm"
)

// GuardedClient wraps an llm.Client with a circuit breaker: every
// attempt (including each retry the pipeline issues) first consults
// the breaker and then reports its outcome, so an outage trips the
// breaker within a handful of attempts and subsequent calls fail fast
// with ErrOpen instead of burning the retry budget. It implements
// llm.ContextClient so deadlines pass through to context-aware inner
// clients.
type GuardedClient struct {
	inner   llm.Client
	breaker *Breaker
}

// Guard wraps inner with breaker.
func Guard(inner llm.Client, breaker *Breaker) *GuardedClient {
	return &GuardedClient{inner: inner, breaker: breaker}
}

// Name returns the inner client's name.
func (g *GuardedClient) Name() string { return g.inner.Name() }

// Breaker returns the wrapped breaker.
func (g *GuardedClient) Breaker() *Breaker { return g.breaker }

// Chat issues one request through the breaker.
func (g *GuardedClient) Chat(messages []llm.Message) (llm.Response, error) {
	return g.ChatContext(context.Background(), messages)
}

// ChatContext issues one request through the breaker, honouring ctx.
func (g *GuardedClient) ChatContext(ctx context.Context, messages []llm.Message) (llm.Response, error) {
	if !g.breaker.Allow() {
		return llm.Response{}, fmt.Errorf("llm %s: %w", g.inner.Name(), ErrOpen)
	}
	resp, err := llm.ChatContext(ctx, g.inner, messages)
	g.breaker.Report(err)
	return resp, err
}
