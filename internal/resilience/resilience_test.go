package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"llm4em/internal/llm"
)

// fakeClock is a manually advanced clock for deterministic breaker
// tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

var errBoom = errors.New("boom")

func TestBreakerConsecutiveFailuresTrip(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerOptions{ConsecutiveFailures: 3, Clock: clk.Now})
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("attempt %d: breaker rejected while closed", i)
		}
		b.Report(errBoom)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state after 2 failures = %v, want closed", got)
	}
	b.Allow()
	b.Report(errBoom)
	if got := b.State(); got != Open {
		t.Fatalf("state after 3rd consecutive failure = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
}

func TestBreakerSuccessResetsConsecutive(t *testing.T) {
	clk := newFakeClock()
	// MinSamples is raised so only the consecutive-failure rule is in
	// play (the 2/3 failure mix would trip the rate rule otherwise).
	b := NewBreaker(BreakerOptions{ConsecutiveFailures: 3, MinSamples: 1000, Clock: clk.Now})
	for i := 0; i < 10; i++ {
		b.Allow()
		b.Report(errBoom)
		b.Allow()
		b.Report(errBoom)
		b.Allow()
		b.Report(nil) // breaks the streak
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want closed (streak never reached 3)", got)
	}
}

func TestBreakerErrorRateTrip(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerOptions{
		ConsecutiveFailures: 1000, // only the rate can trip
		ErrorRate:           0.5,
		MinSamples:          10,
		Window:              10 * time.Second,
		Clock:               clk.Now,
	})
	// Alternate success/failure: 50% error rate, trips once MinSamples
	// results are in the window. The rate is only evaluated on failure
	// reports, so the sequence ends on one.
	for i := 0; i < 10; i++ {
		b.Allow()
		if i%2 == 1 {
			b.Report(errBoom)
		} else {
			b.Report(nil)
		}
	}
	if got := b.State(); got != Open {
		t.Fatalf("state after 10 samples at 50%% failure = %v, want open", got)
	}
}

func TestBreakerErrorRateNeedsMinSamples(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerOptions{
		ConsecutiveFailures: 1000,
		ErrorRate:           0.5,
		MinSamples:          10,
		Clock:               clk.Now,
	})
	// 100% failure rate but below MinSamples, with successes breaking
	// no streak rule: interleave to stay under both thresholds.
	for i := 0; i < 9; i++ {
		b.Allow()
		b.Report(errBoom)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state with 9 < MinSamples failures = %v, want closed", got)
	}
}

func TestBreakerWindowExpiresOldFailures(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerOptions{
		ConsecutiveFailures: 1000,
		ErrorRate:           0.5,
		MinSamples:          4,
		Window:              10 * time.Second,
		Clock:               clk.Now,
	})
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Report(errBoom)
	}
	// Let the failures age out of the rolling window entirely.
	clk.Advance(11 * time.Second)
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Report(nil)
	}
	b.Allow()
	b.Report(errBoom)
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want closed: aged-out failures still counted", got)
	}
}

func TestBreakerHalfOpenProbeAndRecovery(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerOptions{
		ConsecutiveFailures: 2,
		Cooldown:            time.Second,
		HalfOpenProbes:      1,
		Clock:               clk.Now,
	})
	b.Allow()
	b.Report(errBoom)
	b.Allow()
	b.Report(errBoom)
	if got := b.State(); got != Open {
		t.Fatalf("state = %v, want open", got)
	}

	// Cooldown not yet elapsed: rejected.
	clk.Advance(500 * time.Millisecond)
	if b.Allow() {
		t.Fatal("breaker admitted before cooldown elapsed")
	}

	// Cooldown elapsed: exactly one probe is admitted.
	clk.Advance(600 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker rejected the half-open probe")
	}
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	if b.Allow() {
		t.Fatal("breaker admitted a second request during the probe")
	}

	// Probe fails: re-open, wait another cooldown.
	b.Report(errBoom)
	if got := b.State(); got != Open {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}

	// Second probe succeeds: closed, traffic flows again.
	clk.Advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker rejected the second probe")
	}
	b.Report(nil)
	if got := b.State(); got != Closed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected a request")
	}
}

func TestBreakerIgnoresContextErrors(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerOptions{ConsecutiveFailures: 2, Clock: clk.Now})
	for i := 0; i < 20; i++ {
		b.Allow()
		b.Report(context.Canceled)
		b.Allow()
		b.Report(fmt.Errorf("wrap: %w", context.DeadlineExceeded))
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want closed: context errors must not trip", got)
	}
}

func TestShedderConcurrencyAndQueue(t *testing.T) {
	s := NewShedder(ShedOptions{MaxConcurrent: 2, MaxQueue: 1})
	ctx := context.Background()
	if err := s.Acquire(ctx); err != nil {
		t.Fatalf("acquire 1: %v", err)
	}
	if err := s.Acquire(ctx); err != nil {
		t.Fatalf("acquire 2: %v", err)
	}
	if got := s.InFlight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}

	// Third caller queues; fourth is shed.
	queued := make(chan error, 1)
	go func() { queued <- s.Acquire(ctx) }()
	waitFor(t, func() bool { return s.Waiting() == 1 })
	if err := s.Acquire(ctx); !errors.Is(err, ErrShed) {
		t.Fatalf("4th acquire err = %v, want ErrShed", err)
	}
	if s.Shed() != 1 {
		t.Fatalf("shed = %d, want 1", s.Shed())
	}

	// A release lets the queued caller in.
	s.Release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	s.Release()
	s.Release()
	if got := s.InFlight(); got != 0 {
		t.Fatalf("inflight after releases = %d, want 0", got)
	}
}

func TestShedderContextCancelWhileQueued(t *testing.T) {
	s := NewShedder(ShedOptions{MaxConcurrent: 1, MaxQueue: 4})
	if err := s.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() { queued <- s.Acquire(ctx) }()
	waitFor(t, func() bool { return s.Waiting() == 1 })
	cancel()
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued acquire err = %v, want context.Canceled", err)
	}
	s.Release()
	// The cancelled waiter must not have consumed the freed slot.
	if err := s.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire after cancel: %v", err)
	}
}

// stubClient counts calls and returns a scripted error.
type stubClient struct {
	mu    sync.Mutex
	calls int
	err   error
}

func (c *stubClient) Name() string { return "stub" }

func (c *stubClient) Chat([]llm.Message) (llm.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.err != nil {
		return llm.Response{}, c.err
	}
	return llm.Response{Content: "Yes."}, nil
}

func (c *stubClient) setErr(err error) {
	c.mu.Lock()
	c.err = err
	c.mu.Unlock()
}

func (c *stubClient) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

func TestGuardedClientFailsFastWhenOpen(t *testing.T) {
	clk := newFakeClock()
	stub := &stubClient{err: errBoom}
	g := Guard(stub, NewBreaker(BreakerOptions{ConsecutiveFailures: 2, Cooldown: time.Second, Clock: clk.Now}))

	for i := 0; i < 2; i++ {
		if _, err := g.Chat(nil); !errors.Is(err, errBoom) {
			t.Fatalf("call %d err = %v, want errBoom", i, err)
		}
	}
	before := stub.count()
	if _, err := g.Chat(nil); !errors.Is(err, ErrOpen) {
		t.Fatalf("err after trip = %v, want ErrOpen", err)
	}
	if stub.count() != before {
		t.Fatal("open breaker still reached the inner client")
	}

	// Recovery: probe succeeds, traffic resumes.
	stub.setErr(nil)
	clk.Advance(2 * time.Second)
	if resp, err := g.Chat(nil); err != nil || resp.Content != "Yes." {
		t.Fatalf("probe call = %q, %v; want Yes., nil", resp.Content, err)
	}
	if g.Breaker().State() != Closed {
		t.Fatalf("state = %v, want closed after successful probe", g.Breaker().State())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
