// Package resolve implements an online, incremental entity-resolution
// store — the serving-side counterpart of the paper's offline batch
// experiments. A Store maintains a sharded inverted IDF index
// (blocking.Index) over the records added so far, resolves incoming
// query records against it, and folds the resulting match decisions
// into entity groups with an incremental union-find clusterer
// (blocking.UnionFind).
//
// Candidate pairs are routed through a cascade matcher: a calibrated
// local scorer (features.Weights over the unified pair feature
// vector) answers the confident pairs immediately, and only the
// uncertain band between the accept/reject thresholds is escalated to
// the LLM via the concurrent pipeline engine. Every Resolve call
// returns a CostReport showing the split and the estimated spend
// under the model's hosted pricing (internal/cost).
//
// A Store is safe for concurrent use. Index reads take per-shard
// read locks, record inserts take one shard's write lock, and entity
// folding takes the graph lock, so Adds and Resolves on different
// shards proceed in parallel. Resolving against a fixed store is
// deterministic regardless of concurrency: index queries are pure
// reads, the simulated models are deterministic at temperature 0, and
// union-find folding is order-independent (canonical roots are the
// smallest member IDs).
package resolve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"llm4em/internal/blocking"
	"llm4em/internal/cost"
	"llm4em/internal/dispatch"
	"llm4em/internal/entity"
	"llm4em/internal/features"
	"llm4em/internal/llm"
	"llm4em/internal/persist"
	"llm4em/internal/pipeline"
	"llm4em/internal/prompt"
	"llm4em/internal/resilience"
	"llm4em/internal/telemetry"
	"llm4em/internal/tokenize"
)

// Store defaults used when an Options field is left at its zero
// value.
const (
	DefaultShards        = 8
	DefaultMaxCandidates = 10
	DefaultMinScore      = 1.0
	DefaultStopDocFrac   = 0.2
	DefaultDesign        = "domain-complex-force"
	// DefaultSnapshotEvery is the WAL-append count between automatic
	// snapshot+compaction runs of a persistent store.
	DefaultSnapshotEvery = 4096
	// DefaultFanoutRecords is the stored-record count above which
	// Resolve queries the index shards from parallel goroutines. Shard
	// queries cost single-digit microseconds on small stores, where
	// the goroutine handoff would dominate; the default engages the
	// fanout only once per-shard work is large enough to amortize it.
	// Tune per deployment: lower it on many-core serving hosts, raise
	// it (or disable with a negative value) on small ones.
	DefaultFanoutRecords = 1 << 20
	// DefaultDispatchFlush is the longest an uncertain pair waits for
	// batch-mates before the micro-batching dispatcher flushes a
	// partial batch (only meaningful with Options.DispatchPairs > 0).
	DefaultDispatchFlush = dispatch.DefaultFlushInterval
)

// Options configures a Store. The zero value selects sensible
// defaults throughout; negative MinScore/StopDocFrac request literal
// zeros, and Blocking exposes the index layer's explicit v1 option
// fields for callers that want to say so without a sentinel.
type Options struct {
	// Shards is the number of index shards (default DefaultShards).
	Shards int
	// MaxCandidates bounds the candidate pairs per Resolve call
	// (default DefaultMaxCandidates).
	MaxCandidates int
	// MinScore is the minimum summed IDF blocking score (default
	// DefaultMinScore; negative means zero).
	MinScore float64
	// StopDocFrac is the stop-token document-frequency fraction of the
	// shard indexes (default DefaultStopDocFrac; negative means zero).
	StopDocFrac float64
	// Blocking configures the shard indexes with the blocking layer's
	// v1 options: the Compression and Pruning representation knobs plus
	// explicit MinScore/StopDocFrac pointer fields, which — when set —
	// win over the flat fields above (blocking.Float(0) expresses a
	// literal zero without the negative sentinel). Nil keeps the flat
	// fields and the index defaults (compressed, block-max pruned).
	Blocking *blocking.IndexOptions
	// DeferExtraction skips per-record feature extraction at ingest:
	// Add and AddBatch only serialize and index, and a record's
	// extraction materializes lazily — and is cached — the first time
	// the record surfaces as a resolve candidate. Bulk ingest gets
	// markedly cheaper; the first Resolve touching a cold record pays
	// the extraction instead. Recovery replay honors it too.
	DeferExtraction bool
	// FanoutRecords is the stored-record count at which Resolve starts
	// querying the shards in parallel (default DefaultFanoutRecords;
	// negative keeps the fanout serial regardless of size).
	FanoutRecords int
	// Design is the prompt design for escalated pairs (zero value
	// selects DefaultDesign).
	Design prompt.Design
	// Domain is the topical domain of the store's records.
	Domain entity.Domain
	// Cascade tunes the cascade matcher.
	Cascade CascadeOptions
	// Workers, CacheSize and MaxRetries tune the LLM pipeline engine;
	// zero values select the pipeline defaults.
	Workers    int
	CacheSize  int
	MaxRetries int
	// DispatchPairs enables the cross-request micro-batching
	// dispatcher (internal/dispatch): uncertain pairs from concurrent
	// Resolve calls are coalesced into paper-style batched prompts of
	// at most this many pairs, cutting LLM round-trips under load.
	// Zero (or negative) disables it: every uncertain pair is its own
	// client round-trip. Whether batched answers equal per-pair
	// answers is the client's contract — the dispatcher preserves
	// decisions exactly for clients that answer batch positions
	// consistently with per-pair prompts, while simulated study models
	// add the paper's position-dependent batch noise.
	DispatchPairs int
	// DispatchFlush bounds how long a pending uncertain pair waits for
	// batch-mates before a partial batch is flushed (default
	// DefaultDispatchFlush). Only meaningful with DispatchPairs > 0.
	DispatchFlush time.Duration
	// PersistDir enables durability: the store journals every ingested
	// record and fresh match decision to a write-ahead log in this
	// directory and periodically compacts the log into a snapshot.
	// Open replays the directory on startup and reuses journaled
	// decisions without re-invoking the LLM; New ignores the field
	// (in-memory store). Empty means in-memory.
	PersistDir string
	// SnapshotEvery is the number of WAL appends between automatic
	// snapshot+compaction runs (default DefaultSnapshotEvery; negative
	// disables the cadence — Checkpoint and Close still compact).
	SnapshotEvery int
	// SyncEvery fsyncs the WAL after every N appends (default 0: sync
	// only on snapshot, Flush and Close; 1 makes every append durable
	// against OS crashes at a heavy throughput cost).
	SyncEvery int
	// WALFS is the filesystem the WAL writes through (default the real
	// one). The chaos harness injects fault-wrapping implementations;
	// serving code leaves it nil.
	WALFS persist.FS
	// Resilience enables the fault-tolerance layer: circuit breaker
	// around the LLM client, escalation load shedding, request
	// hedging, and deferred-decision graceful degradation (see
	// ResilienceOptions).
	Resilience ResilienceOptions
	// Telemetry wires the store (and the pipeline, dispatcher, index
	// shards and WAL underneath it) into a telemetry handle: per-stage
	// resolve latency histograms, cascade outcome counters, and the
	// sampled slow-resolve logger. Nil (the default) disables all
	// instrumentation; the hot path then pays only nil checks.
	Telemetry *telemetry.Telemetry
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = DefaultShards
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = DefaultMaxCandidates
	}
	// A set Blocking pointer field wins over its flat counterpart; the
	// explicit values fold into the flat fields' sentinel encoding so
	// the defaulting below resolves both generations identically.
	if b := o.Blocking; b != nil {
		if b.MinScore != nil {
			if o.MinScore = *b.MinScore; o.MinScore <= 0 {
				o.MinScore = -1
			}
		}
		if b.StopDocFrac != nil {
			if o.StopDocFrac = *b.StopDocFrac; o.StopDocFrac <= 0 {
				o.StopDocFrac = -1
			}
		}
	}
	if o.MinScore < 0 {
		o.MinScore = 0
	} else if o.MinScore == 0 {
		o.MinScore = DefaultMinScore
	}
	if o.StopDocFrac < 0 {
		o.StopDocFrac = 0
	} else if o.StopDocFrac == 0 {
		o.StopDocFrac = DefaultStopDocFrac
	}
	if o.FanoutRecords == 0 {
		o.FanoutRecords = DefaultFanoutRecords
	}
	if o.Design.Name == "" {
		o.Design, _ = prompt.DesignByName(DefaultDesign)
	}
	if o.SnapshotEvery < 0 {
		o.SnapshotEvery = 0
	} else if o.SnapshotEvery == 0 {
		o.SnapshotEvery = DefaultSnapshotEvery
	}
	if o.SyncEvery < 0 {
		o.SyncEvery = 0
	}
	if o.DispatchPairs < 0 {
		o.DispatchPairs = 0
	}
	if o.DispatchFlush <= 0 {
		o.DispatchFlush = DefaultDispatchFlush
	}
	return o
}

// blockingOptions is the shard indexes' build configuration: the
// caller's Blocking overrides with the resolved flat thresholds filled
// in (withDefaults already folded the precedence between the two
// generations of fields).
func (o Options) blockingOptions() blocking.IndexOptions {
	var b blocking.IndexOptions
	if o.Blocking != nil {
		b = *o.Blocking
	}
	b.MinScore = blocking.Float(o.MinScore)
	b.StopDocFrac = blocking.Float(o.StopDocFrac)
	return b
}

// Typed errors, for callers (e.g. the HTTP front end) that map
// failure classes to response codes.
var (
	// ErrNoID marks a record or query with an empty ID — a caller
	// mistake.
	ErrNoID = errors.New("resolve: record has no ID")
	// ErrDuplicateID marks an Add of an already-stored record ID.
	ErrDuplicateID = errors.New("resolve: duplicate record ID")
)

// Store is the online entity-resolution store.
type Store struct {
	opts    Options
	eng     *pipeline.Engine
	pricing cost.Pricing
	priced  bool
	// disp is the cross-request micro-batching dispatcher for the
	// cascade's uncertain band; nil when Options.DispatchPairs is 0.
	// Shared by every Resolve call, drained by Close.
	disp *dispatch.Dispatcher
	// res is the fault-tolerance layer — breaker, shedder, deferred
	// queue, re-escalator; nil when Options.Resilience.Enabled is
	// false, which keeps the hot path at a single nil check.
	res *resilienceState

	shards []*shard
	// count tracks the stored-record total without touching shard
	// locks; Resolve reads it to decide whether parallel shard fanout
	// is worth the goroutine overhead.
	count atomic.Int64
	// rscratch pools per-resolve candidate buffers (*resolveScratch).
	rscratch sync.Pool

	graphMu sync.Mutex
	graph   *blocking.UnionFind

	statsMu sync.Mutex
	totals  totals

	// persistMu serializes WAL appends, journal writes and snapshots.
	// Lock order: persistMu before graphMu/shard locks/statsMu, never
	// the other way around. All persistence fields are static after
	// Open, so wal == nil reliably selects the in-memory fast path.
	persistMu sync.Mutex
	wal       *persist.WAL
	journal   map[pairID]persist.DecisionEntry
	pstate    persistState
}

// shard is one partition of the record store and its inverted index.
// Records route to shards by ID hash, so concurrent Adds contend only
// per shard; Resolves read every shard under its read lock.
type shard struct {
	mu sync.RWMutex
	ix *blocking.Index
	// recs maps the IDs of records inserted since the store was built
	// or opened. A store restarted from a mapped index snapshot keeps
	// its base records in the mmap — hasLocked/recordLocked consult the
	// snapshot's on-disk ID hash for those instead of duplicating them
	// here.
	recs map[string]entity.Record
	// ext caches each record's feature extraction, position-aligned
	// with ix, so the cascade scores candidates without re-extracting
	// (or re-serializing) them on every Resolve. Entries are nil for
	// records whose extraction is deferred (Options.DeferExtraction, or
	// any record behind a mapped restart) until fillExtracted
	// materializes them. Pointers are handed out to queries and stay
	// valid across append growth; the pointed-to extractions are
	// immutable once stored — PairFeatures only reads them.
	ext []*features.Extracted
}

// insertLocked indexes one pre-serialized record (ext may be nil for
// deferred extraction). The caller holds mu (or has exclusive access
// during recovery) and has already rejected duplicates.
func (sh *shard) insertLocked(r entity.Record, text string, ext *features.Extracted) {
	sh.recs[r.ID] = r
	sh.ix.AddSerialized(r, text)
	sh.ext = append(sh.ext, ext)
}

// hasLocked reports whether a record ID is stored in the shard —
// inserted live, or part of the mapped base. Caller holds mu.
func (sh *shard) hasLocked(id string) bool {
	if _, ok := sh.recs[id]; ok {
		return true
	}
	_, ok := sh.ix.RecordPos(id)
	return ok
}

// recordLocked returns a stored record by ID, decoding from the mapped
// base when the live map misses. Caller holds mu.
func (sh *shard) recordLocked(id string) (entity.Record, bool) {
	if r, ok := sh.recs[id]; ok {
		return r, true
	}
	if pos, ok := sh.ix.RecordPos(id); ok {
		return sh.ix.Record(pos), true
	}
	return entity.Record{}, false
}

// collect queries one shard for blocking candidates and copies the
// matching records out under the read lock, appending to dst (a
// reusable buffer owned by the caller). words is the pre-split query
// tokenization shared by every shard. Candidates whose extraction was
// deferred are materialized after the read lock drops.
func (sh *shard) collect(dst []scored, qid string, words []string, maxCandidates int, minScore float64) []scored {
	start := len(dst)
	lazy := false
	sh.mu.RLock()
	for _, c := range sh.ix.QueryTokens(words, maxCandidates, minScore) {
		r := sh.ix.Record(c.Pos)
		if r.ID == qid {
			continue // re-resolving an added record
		}
		ext := sh.ext[c.Pos]
		if ext == nil {
			lazy = true
		}
		dst = append(dst, scored{rec: r, ext: ext, score: c.Score, pos: c.Pos})
	}
	sh.mu.RUnlock()
	if lazy {
		sh.fillExtracted(dst[start:])
	}
	return dst
}

// fillExtracted materializes deferred feature extractions for
// collected candidates. Extraction (pure, deterministic) runs outside
// any lock; the result publishes under a brief write lock with a
// double-check, so concurrent Resolves racing on the same cold record
// converge on one cached pointer.
func (sh *shard) fillExtracted(cs []scored) {
	for i := range cs {
		if cs[i].ext != nil {
			continue
		}
		e := features.ExtractText(cs[i].rec.Serialize())
		sh.mu.Lock()
		if cur := sh.ext[cs[i].pos]; cur != nil {
			cs[i].ext = cur
		} else {
			sh.ext[cs[i].pos] = &e
			cs[i].ext = &e
		}
		sh.mu.Unlock()
	}
}

// scored is one blocking candidate copied out of a shard: the record,
// its cached feature extraction, the summed-IDF blocking score and the
// shard-index position it came from.
type scored struct {
	rec   entity.Record
	ext   *features.Extracted
	score float64
	pos   int
}

// resolveScratch pools the per-shard candidate buffers of
// blockCandidates. Only the buffers are pooled: the merged result
// holds value copies, so handing the scratch back never aliases a
// returned candidate.
type resolveScratch struct {
	perShard [][]scored
}

// blockCandidates fans the pre-tokenized query out to every shard and
// merges the per-shard ranked lists into the global top
// MaxCandidates. Above Options.FanoutRecords the fanout runs one
// bounded goroutine per shard; results land in per-shard slots, so
// the merge — and therefore the final ranking — is deterministic
// regardless of scheduling.
func (s *Store) blockCandidates(qid string, words []string) []scored {
	sc := s.rscratch.Get().(*resolveScratch)
	if len(sc.perShard) != len(s.shards) {
		sc.perShard = make([][]scored, len(s.shards))
	}
	perShard := sc.perShard
	if len(s.shards) > 1 && s.opts.FanoutRecords > 0 && s.count.Load() >= int64(s.opts.FanoutRecords) {
		var wg sync.WaitGroup
		wg.Add(len(s.shards))
		for i, sh := range s.shards {
			go func(i int, sh *shard) {
				defer wg.Done()
				perShard[i] = sh.collect(perShard[i][:0], qid, words, s.opts.MaxCandidates, s.opts.MinScore)
			}(i, sh)
		}
		wg.Wait()
	} else {
		for i, sh := range s.shards {
			perShard[i] = sh.collect(perShard[i][:0], qid, words, s.opts.MaxCandidates, s.opts.MinScore)
		}
	}
	out := mergeTopK(perShard, s.opts.MaxCandidates)
	s.rscratch.Put(sc)
	return out
}

// scoredBefore is the global candidate order: score descending, ties
// broken by ascending record ID (IDs are unique across shards).
func scoredBefore(a, b scored) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.rec.ID < b.rec.ID
}

// mergeTopK selects the global top-K from the per-shard candidate
// lists with the shared bounded-heap selection — the same result
// sorting everything and truncating produced, without the global
// sort.
func mergeTopK(perShard [][]scored, k int) []scored {
	total := 0
	for _, cs := range perShard {
		total += len(cs)
	}
	if total == 0 {
		return nil
	}
	if k > total {
		k = total
	}
	h := make([]scored, 0, k)
	for _, cs := range perShard {
		for _, c := range cs {
			h = blocking.PushBounded(h, k, c, scoredBefore)
		}
	}
	blocking.SortTopK(h, scoredBefore)
	return h
}

// totals accumulates store-lifetime counters under statsMu.
type totals struct {
	resolves         uint64
	candidates       uint64
	localAccepts     uint64
	localRejects     uint64
	llmPairs         uint64
	batchedPairs     uint64
	batchFallbacks   uint64
	groupFallbacks   uint64
	budgetDecided    uint64
	journalHits      uint64
	deferredPairs    uint64
	redecided        uint64
	promptTokens     uint64
	completionTokens uint64
	cents            float64
	match            StrategyTotals
	compare          StrategyTotals
	sel              StrategyTotals
	reason           StrategyTotals
}

// StrategyTotals accumulates one prompt strategy's lifetime share of
// the store's LLM activity — the uint64 counterpart of the per-call
// StrategyUsage.
type StrategyTotals struct {
	Calls            uint64
	Pairs            uint64
	PromptTokens     uint64
	CompletionTokens uint64
}

// add folds one call's strategy usage into the lifetime totals.
func (t *StrategyTotals) add(u StrategyUsage) {
	t.Calls += uint64(u.Calls)
	t.Pairs += uint64(u.Pairs)
	t.PromptTokens += uint64(u.PromptTokens)
	t.CompletionTokens += uint64(u.CompletionTokens)
}

// New returns an empty store resolving against the client.
func New(client llm.Client, opts Options) *Store {
	s := newStore(client, opts)
	// Open starts the re-escalator itself, after WAL replay has rebuilt
	// the deferred queue.
	s.startResilience()
	return s
}

// newStore builds the store without starting background goroutines.
func newStore(client llm.Client, opts Options) *Store {
	o := opts.withDefaults()
	// Sub-package instruments are handed down by value; without a
	// telemetry handle they stay zero (all-nil, nil-safe no-ops).
	var pm telemetry.PipelineMetrics
	var dm telemetry.DispatchMetrics
	var bm telemetry.BlockingMetrics
	var rm telemetry.ResilienceMetrics
	if o.Telemetry != nil {
		pm, dm, bm = o.Telemetry.Pipeline, o.Telemetry.Dispatch, o.Telemetry.Blocking
		rm = o.Telemetry.Resilience
	}
	spec := prompt.Spec{Design: o.Design, Domain: o.Domain}
	var res *resilienceState
	var hedge time.Duration
	if o.Resilience.Enabled {
		res = newResilienceState(o.Resilience, spec, rm)
		// The breaker wraps the client BEFORE the pipeline engine, so
		// every retry attempt — not just whole chat calls — consults
		// and reports it, and an open breaker fails attempts fast
		// (resilience.ErrOpen is not transient, so the retry loop stops
		// immediately).
		client = resilience.Guard(client, res.breaker)
		hedge = o.Resilience.Hedge
	}
	s := &Store{
		opts: o,
		res:  res,
		eng: pipeline.New(client, pipeline.Options{
			Workers:    o.Workers,
			CacheSize:  o.CacheSize,
			MaxRetries: o.MaxRetries,
			Hedge:      hedge,
			Metrics:    pm,
		}),
		shards:  make([]*shard, o.Shards),
		graph:   blocking.NewUnionFind(),
		journal: map[pairID]persist.DecisionEntry{},
	}
	s.pricing, s.priced = cost.For(client.Name())
	if o.DispatchPairs > 0 {
		// The per-pair builder is the same prompt Resolve's unbatched
		// path sends, so the dispatcher's dedupe and cache layering key
		// on exactly the prompts the rest of the system uses.
		s.disp = dispatch.New(s.eng, spec.Build,
			func(ps []entity.Pair) string { return prompt.BuildBatch(o.Domain, ps) },
			dispatch.Options{MaxBatchPairs: o.DispatchPairs, FlushInterval: o.DispatchFlush, Metrics: dm})
	}
	s.rscratch.New = func() any { return &resolveScratch{} }
	for i := range s.shards {
		s.shards[i] = &shard{
			ix:   blocking.BuildIndex(nil, o.blockingOptions()),
			recs: map[string]entity.Record{},
		}
		s.shards[i].ix.SetMetrics(bm)
	}
	return s
}

// extractFor runs ingest-time feature extraction — or defers it to the
// first resolve that surfaces the record (Options.DeferExtraction).
func (s *Store) extractFor(text string) *features.Extracted {
	if s.opts.DeferExtraction {
		return nil
	}
	e := features.ExtractText(text)
	return &e
}

// shardIndex routes a record ID to its shard slot.
func (s *Store) shardIndex(id string) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// shardFor routes a record ID to its shard.
func (s *Store) shardFor(id string) *shard { return s.shards[s.shardIndex(id)] }

// Add inserts a record into the store: it becomes findable by Resolve
// and forms a singleton entity until matched. Records with empty or
// duplicate IDs are rejected. Serialization and feature extraction
// run before the shard lock is taken, so concurrent Adds contend only
// on the map/index insert itself.
func (s *Store) Add(r entity.Record) error {
	if r.ID == "" {
		return ErrNoID
	}
	text := r.Serialize()
	ext := s.extractFor(text)
	sh := s.shardFor(r.ID)
	sh.mu.Lock()
	if sh.hasLocked(r.ID) {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDuplicateID, r.ID)
	}
	sh.insertLocked(r, text, ext)
	sh.mu.Unlock()
	s.count.Add(1)

	s.graphMu.Lock()
	s.graph.Add(r.ID)
	s.graphMu.Unlock()

	if s.wal != nil {
		s.persistMu.Lock()
		err := s.appendRecordLocked(r)
		s.persistMu.Unlock()
		if err != nil {
			return fmt.Errorf("resolve: journal record %q: %w", r.ID, err)
		}
	}
	return nil
}

// BatchError reports a partially applied AddBatch: Added records are
// in the store (a batch is not transactional), Err is the failure.
// Unwrap exposes Err, so errors.Is(err, ErrDuplicateID) still works.
type BatchError struct {
	Added int
	Err   error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("resolve: batch add failed after %d records: %v", e.Added, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// AddBatch inserts the records, paying each lock — shard, entity
// graph, persistence — once per batch instead of once per record.
// Records with empty IDs or IDs duplicated within the batch reject
// the whole batch upfront; an ID already in the store stops the
// insert with a *BatchError reporting how many records made it in
// (records of a failed batch are not rolled back). Records are
// processed grouped by shard, not in input order.
func (s *Store) AddBatch(rs []entity.Record) error {
	if len(rs) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(rs))
	for _, r := range rs {
		if r.ID == "" {
			return &BatchError{Err: ErrNoID}
		}
		if seen[r.ID] {
			return &BatchError{Err: fmt.Errorf("%w in batch: %q", ErrDuplicateID, r.ID)}
		}
		seen[r.ID] = true
	}

	// Serialize and extract outside any lock, then insert shard by
	// shard under one lock acquisition each.
	type prepared struct {
		rec  entity.Record
		text string
		ext  *features.Extracted
	}
	byShard := make([][]prepared, len(s.shards))
	for _, r := range rs {
		text := r.Serialize()
		i := s.shardIndex(r.ID)
		byShard[i] = append(byShard[i], prepared{rec: r, text: text, ext: s.extractFor(text)})
	}

	var inserted []entity.Record
	var insertErr error
insert:
	for i, group := range byShard {
		if len(group) == 0 {
			continue
		}
		sh := s.shards[i]
		sh.mu.Lock()
		for _, p := range group {
			if sh.hasLocked(p.rec.ID) {
				insertErr = fmt.Errorf("%w: %q", ErrDuplicateID, p.rec.ID)
				sh.mu.Unlock()
				break insert
			}
			sh.insertLocked(p.rec, p.text, p.ext)
			inserted = append(inserted, p.rec)
		}
		sh.mu.Unlock()
	}
	s.count.Add(int64(len(inserted)))

	if len(inserted) > 0 {
		s.graphMu.Lock()
		for _, r := range inserted {
			s.graph.Add(r.ID)
		}
		s.graphMu.Unlock()
	}

	// Journal everything that was inserted, even on a failed batch:
	// the durable log must cover the in-memory state.
	if s.wal != nil && len(inserted) > 0 {
		s.persistMu.Lock()
		for _, r := range inserted {
			if err := s.appendRecordLocked(r); err != nil {
				s.persistMu.Unlock()
				// Keep a pending insert error (e.g. the duplicate ID
				// that stopped the batch) visible alongside the journal
				// failure, so errors.Is still finds the typed cause.
				return &BatchError{Added: len(inserted),
					Err: errors.Join(insertErr, fmt.Errorf("journal record %q: %w", r.ID, err))}
			}
		}
		s.persistMu.Unlock()
	}
	if insertErr != nil {
		return &BatchError{Added: len(inserted), Err: insertErr}
	}
	return nil
}

// Record returns a stored record by ID.
func (s *Store) Record(id string) (entity.Record, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	r, ok := sh.recordLocked(id)
	sh.mu.RUnlock()
	return r, ok
}

// Len returns the number of stored records.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.ix.Len()
		sh.mu.RUnlock()
	}
	return n
}

// Result is the outcome of resolving one query record.
type Result struct {
	// Query is the resolved record.
	Query entity.Record
	// EntityID is the canonical ID of the entity the query belongs to
	// after folding — the smallest member ID of its group (the query's
	// own ID if nothing matched). It reflects the entity graph at fold
	// time: concurrently resolved queries that joined the same entity
	// earlier appear in it. Decisions and the final Snapshot are
	// independent of that ordering.
	EntityID string
	// Members are the sorted IDs of that entity at fold time,
	// including the query.
	Members []string
	// Decisions covers every candidate pair in blocking-rank order.
	Decisions []PairDecision
	// Cost accounts the call.
	Cost CostReport
}

// Matched reports whether the query matched any stored record.
func (r Result) Matched() bool { return len(r.Members) > 1 }

// Resolve matches a query record against the store and folds the
// decisions into the entity graph: the query joins the entity of every
// record it matched (transitively merging their groups). The query
// itself is NOT added to the searchable index — call Add for that,
// before or after — so concurrent Resolves against a fixed store are
// independent and deterministic.
func (s *Store) Resolve(q entity.Record) (Result, error) {
	return s.ResolveContext(context.Background(), q)
}

// ResolveContext is Resolve carrying a request context, which serves
// two roles. When the context holds a telemetry.Trace (the HTTP layer
// attaches one per request), per-stage durations are recorded into it
// under the request's trace ID, alongside the store-level telemetry
// handle. And the context's deadline/cancellation bounds the LLM
// escalation: in-flight model work is abandoned when it fires (the
// local stages always run to completion — they are microseconds).
// Without the resilience layer an expired context fails the call with
// ctx.Err(); with it (Options.Resilience.Enabled) a spent deadline
// degrades the undecided pairs to deferred local verdicts instead —
// see deferred.go.
func (s *Store) ResolveContext(ctx context.Context, q entity.Record) (Result, error) {
	if q.ID == "" {
		return Result{}, fmt.Errorf("query: %w", ErrNoID)
	}
	obs := s.newStageObserver(telemetry.FromContext(ctx))
	text := q.Serialize()
	// One extraction serves everything downstream: its WordTokens are
	// the blocking tokenization (computed once, fanned out to every
	// shard) and the extraction itself feeds the cascade scorer.
	qext := features.ExtractText(text)
	obs.lap(telemetry.StageExtract)

	// Blocking: query every shard's index — in parallel for large
	// stores — and merge the per-shard top-K lists into the global
	// top-K.
	cands := s.blockCandidates(q.ID, qext.WordTokens)
	obs.lap(telemetry.StageBlock)

	// Journal short-circuit: pairs decided in an earlier call —
	// possibly before a restart — replay their durable decision
	// instead of re-running the cascade or re-paying the LLM.
	decisions := make([]PairDecision, len(cands))
	var fresh []int // indices into cands still needing a decision
	var journalHits int
	if s.wal != nil {
		s.persistMu.Lock()
		for i, c := range cands {
			if je, ok := s.journal[pairID{query: q.ID, candidate: c.rec.ID}]; ok {
				decisions[i] = PairDecision{
					CandidateID: c.rec.ID,
					BlockScore:  c.score,
					Probability: je.Probability,
					Match:       je.Match,
					Method:      Method(je.Method),
					Answer:      je.Answer,
					Journaled:   true,
					Deferred:    je.Deferred,
				}
				journalHits++
			} else {
				fresh = append(fresh, i)
			}
		}
		s.persistMu.Unlock()
	} else {
		fresh = make([]int, len(cands))
		for i := range cands {
			fresh[i] = i
		}
	}
	obs.lap(telemetry.StageJournal)

	// Cascade: local scorer first, the uncertain band to the LLM. The
	// candidate extractions come from the shard cache — no candidate
	// is re-serialized or re-extracted here.
	ids := make([]string, len(fresh))
	exts := make([]*features.Extracted, len(fresh))
	scores := make([]float64, len(fresh))
	for fi, ci := range fresh {
		ids[fi] = cands[ci].rec.ID
		exts[fi] = cands[ci].ext
		scores[fi] = cands[ci].score
	}
	spec := prompt.Spec{Design: s.opts.Design, Domain: s.opts.Domain}
	var estimateCents func(i int) float64
	if s.priced {
		// Price the pair's actual prompt plus a typical completion,
		// so the cost budget tracks the configured design's real
		// prompt sizes.
		estimateCents = func(i int) float64 {
			built := spec.Build(entity.Pair{ID: q.ID + "|" + ids[i], A: q, B: cands[fresh[i]].rec})
			return cost.PerPromptCents(s.pricing,
				float64(tokenize.EstimateTokens(built)), EstCompletionTokens)
		}
	}
	plan := s.opts.Cascade.plan(qext, ids, exts, scores, estimateCents)
	plan.report.Candidates = len(cands)
	plan.report.JournalHits = journalHits
	plan.report.Priced = s.priced
	obs.lap(telemetry.StageScore)

	if len(plan.llm) > 0 {
		pairs := make([]entity.Pair, len(plan.llm))
		for i, di := range plan.llm {
			pairs[i] = entity.Pair{
				ID: q.ID + "|" + cands[fresh[di]].rec.ID,
				A:  q,
				B:  cands[fresh[di]].rec,
			}
		}
		var modelLat time.Duration
		var err error
		if s.res != nil {
			modelLat, err = s.escalateResilient(ctx, q, pairs, spec, &plan)
		} else {
			modelLat, err = s.escalate(ctx, pairs, spec, &plan)
		}
		if err != nil {
			err = fmt.Errorf("resolve: %w", err)
			obs.finish(q.ID, plan.report, err)
			return Result{}, err
		}
		obs.lapLLM(modelLat)
	}
	for fi, ci := range fresh {
		decisions[ci] = plan.decisions[fi]
	}

	// Fold the decisions into the entity graph and, for a persistent
	// store, commit them to the journal and the WAL. persistMu spans
	// fold, totals and append so a concurrent snapshot never captures
	// totals whose WAL entry would replay on top of them.
	if s.wal != nil {
		s.persistMu.Lock()
	}
	s.graphMu.Lock()
	s.graph.Add(q.ID)
	for _, d := range decisions {
		// A deferred match is tentative and stays out of the graph:
		// union-find merges cannot be undone, so the union waits for the
		// re-escalator's real verdict (deferred.go).
		if d.Match && !d.Deferred {
			s.graph.Union(q.ID, d.CandidateID)
		}
	}
	entityID, _ := s.graph.Find(q.ID)
	members := s.graph.Members(q.ID)
	s.graphMu.Unlock()

	s.recordTotals(plan.report)
	obs.lap(telemetry.StageFold)
	if s.wal != nil {
		freshEntries := make([]persist.DecisionEntry, len(fresh))
		for fi, ci := range fresh {
			d := decisions[ci]
			freshEntries[fi] = persist.DecisionEntry{
				CandidateID: d.CandidateID,
				BlockScore:  d.BlockScore,
				Probability: d.Probability,
				Match:       d.Match,
				Method:      string(d.Method),
				Answer:      d.Answer,
				Deferred:    d.Deferred,
			}
		}
		err := s.appendResolveLocked(q, freshEntries, plan.report)
		s.persistMu.Unlock()
		obs.lap(telemetry.StagePersist)
		if err != nil {
			err = fmt.Errorf("resolve: journal decisions for %q: %w", q.ID, err)
			obs.finish(q.ID, plan.report, err)
			return Result{}, err
		}
	}
	obs.finish(q.ID, plan.report, nil)
	return Result{
		Query:     q,
		EntityID:  entityID,
		Members:   members,
		Decisions: decisions,
		Cost:      plan.report,
	}, nil
}

// escalate sends the planned uncertain pairs to the LLM and fills
// their decisions and the report's LLM accounting, honoring the
// configured Cascade.Strategy and reason tier (see escalator). With
// the micro-batching dispatcher enabled, pairwise prompts ride shared
// batched prompts (possibly alongside other concurrent Resolve
// calls); otherwise each request runs on the engine's worker pool.
// The cascade plan has already applied LLMBudget and
// MaxCentsPerResolve, so the strategy only changes how many
// round-trips the escalated pairs cost, never which pairs are
// escalated.
//
// The returned duration sums the model-side latency the answers
// report (a batched or grouped answer reports its share of the shared
// request), letting the stage observer split the escalation
// wall-clock into model time and dispatch wait.
func (s *Store) escalate(ctx context.Context, pairs []entity.Pair, spec prompt.Spec, plan *cascadePlan) (time.Duration, error) {
	esc := &escalator{
		eng:     s.eng,
		disp:    s.disp,
		opts:    s.opts.Cascade,
		spec:    spec,
		domain:  s.opts.Domain,
		pricing: s.pricing,
		priced:  s.priced,
	}
	return esc.run(ctx, pairs, plan)
}

// escalateResilient is escalate behind the fault-tolerance layer:
// escalations pass through the load shedder, and an unavailable
// backend — breaker open, deadline spent, retries exhausted —
// degrades the undecided pairs to deferred local verdicts instead of
// failing the Resolve. Only two errors can surface: resilience.ErrShed
// (the server is full — the backend is fine, so degrading would
// silently shed load as fake answers) and context.Canceled (the
// caller gave up; there is no one to serve a degraded answer to —
// though pairs already deferred by then stay queued).
func (s *Store) escalateResilient(ctx context.Context, q entity.Record, pairs []entity.Pair, spec prompt.Spec, plan *cascadePlan) (time.Duration, error) {
	// Fast-path degrade: a known-open breaker or an already-expired
	// deadline makes the LLM attempt pointless — skip the shedder
	// queue entirely and answer locally.
	if s.res.breaker.State() == resilience.Open || ctx.Err() != nil {
		s.degrade(q, plan)
		return 0, nil
	}
	if err := s.res.shed.Acquire(ctx); err != nil {
		if errors.Is(err, resilience.ErrShed) {
			return 0, err
		}
		if errors.Is(err, context.Canceled) {
			return 0, err
		}
		// Deadline expired while queued for a slot.
		s.degrade(q, plan)
		return 0, nil
	}
	defer s.res.shed.Release()
	modelLat, err := s.escalate(ctx, pairs, spec, plan)
	if err == nil {
		return modelLat, nil
	}
	if errors.Is(err, context.Canceled) {
		return 0, err
	}
	s.degrade(q, plan)
	return 0, nil
}

// recordTotals folds one call's report into the lifetime counters.
func (s *Store) recordTotals(r CostReport) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	s.totals.resolves++
	s.totals.candidates += uint64(r.Candidates)
	s.totals.localAccepts += uint64(r.LocalAccepts)
	s.totals.localRejects += uint64(r.LocalRejects)
	s.totals.llmPairs += uint64(r.LLMPairs)
	s.totals.batchedPairs += uint64(r.BatchedPairs)
	s.totals.batchFallbacks += uint64(r.BatchFallbacks)
	s.totals.groupFallbacks += uint64(r.GroupFallbacks)
	s.totals.budgetDecided += uint64(r.BudgetDecided)
	s.totals.journalHits += uint64(r.JournalHits)
	s.totals.deferredPairs += uint64(r.DeferredPairs)
	s.totals.promptTokens += uint64(r.PromptTokens)
	s.totals.completionTokens += uint64(r.CompletionTokens)
	s.totals.cents += r.Cents
	s.totals.match.add(r.MatchUsage)
	s.totals.compare.add(r.CompareUsage)
	s.totals.sel.add(r.SelectUsage)
	s.totals.reason.add(r.ReasonUsage)
}

// Entity returns the sorted member IDs of the entity containing the
// ID, which may be a stored record or a previously resolved query.
func (s *Store) Entity(id string) ([]string, bool) {
	s.graphMu.Lock()
	defer s.graphMu.Unlock()
	if _, ok := s.graph.Find(id); !ok {
		return nil, false
	}
	return s.graph.Members(id), true
}

// Snapshot returns all entity groups as sorted member slices in
// deterministic order.
func (s *Store) Snapshot() [][]string {
	s.graphMu.Lock()
	defer s.graphMu.Unlock()
	return s.graph.Groups()
}

// Stats is a snapshot of the store's lifetime counters.
type Stats struct {
	// Records is the number of stored (indexed) records; Entities the
	// number of entity groups, which also counts resolved queries.
	Records  int
	Entities int
	// Resolves is the number of Resolve calls served.
	Resolves uint64
	// Candidates is the total candidate pairs blocking produced;
	// LocalAccepts/LocalRejects/LLMPairs/BudgetDecided split them by
	// deciding stage.
	Candidates    uint64
	LocalAccepts  uint64
	LocalRejects  uint64
	LLMPairs      uint64
	BudgetDecided uint64
	// BatchedPairs counts LLM pairs answered via cross-request batched
	// prompts; BatchFallbacks pairs re-answered individually after a
	// batched reply failed to parse.
	BatchedPairs   uint64
	BatchFallbacks uint64
	// GroupFallbacks counts pairs re-answered by individual pairwise
	// prompts after a grouped compare/select reply failed strict
	// parsing.
	GroupFallbacks uint64
	// MatchStrategy, CompareStrategy, SelectStrategy and
	// ReasonStrategy split the lifetime LLM activity by the prompt
	// strategy that produced it (see StrategyUsage).
	MatchStrategy   StrategyTotals
	CompareStrategy StrategyTotals
	SelectStrategy  StrategyTotals
	ReasonStrategy  StrategyTotals
	// DeferredPairs counts pairs degraded to tentative local verdicts
	// while the LLM backend was unavailable; Redecided counts those the
	// background re-escalator has since settled with a real LLM
	// verdict (both lifetime, surviving restarts).
	DeferredPairs uint64
	Redecided     uint64
	// JournalHits counts pairs decided from the durable decision
	// journal of a persistent store.
	JournalHits uint64
	// PromptTokens/CompletionTokens/Cents sum the LLM usage; Priced
	// reports whether the model has hosted pricing.
	PromptTokens     uint64
	CompletionTokens uint64
	Cents            float64
	Priced           bool
	// Engine counts client calls, cache hits and retries of the
	// underlying pipeline engine.
	Engine pipeline.Stats
	// Dispatch reports the micro-batching dispatcher's counters;
	// Dispatch.Enabled is false when Options.DispatchPairs is 0 and
	// every embedded counter is then zero.
	Dispatch DispatchStats
	// Persist reports the durability side: recovery counts, WAL and
	// snapshot activity. Persist.Enabled is false for in-memory
	// stores.
	Persist PersistStats
	// Resilience reports the fault-tolerance layer: breaker state,
	// shed count, deferred queue depth. Resilience.Enabled is false
	// when Options.Resilience.Enabled is.
	Resilience ResilienceStats
}

// LocalFraction returns the lifetime fraction of candidate pairs
// decided without an LLM call.
func (st Stats) LocalFraction() float64 {
	if st.Candidates == 0 {
		return 1
	}
	return 1 - float64(st.LLMPairs)/float64(st.Candidates)
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	// persistStats locks persistMu, which must never be acquired with
	// graphMu or statsMu held — gather it first.
	ps := s.persistStats()

	s.graphMu.Lock()
	entities := s.graph.Sets()
	s.graphMu.Unlock()

	s.statsMu.Lock()
	t := s.totals
	s.statsMu.Unlock()

	st := Stats{
		Records:          s.Len(),
		Entities:         entities,
		Resolves:         t.resolves,
		Candidates:       t.candidates,
		LocalAccepts:     t.localAccepts,
		LocalRejects:     t.localRejects,
		LLMPairs:         t.llmPairs,
		BudgetDecided:    t.budgetDecided,
		BatchedPairs:     t.batchedPairs,
		BatchFallbacks:   t.batchFallbacks,
		GroupFallbacks:   t.groupFallbacks,
		DeferredPairs:    t.deferredPairs,
		Redecided:        t.redecided,
		MatchStrategy:    t.match,
		CompareStrategy:  t.compare,
		SelectStrategy:   t.sel,
		ReasonStrategy:   t.reason,
		JournalHits:      t.journalHits,
		PromptTokens:     t.promptTokens,
		CompletionTokens: t.completionTokens,
		Cents:            t.cents,
		Priced:           s.priced,
		Engine:           s.eng.Stats(),
		Persist:          ps,
	}
	if s.disp != nil {
		st.Dispatch = DispatchStats{Enabled: true, Stats: s.disp.Stats()}
	}
	if s.res != nil {
		st.Resilience = ResilienceStats{
			Enabled:       true,
			BreakerState:  s.res.breaker.State().String(),
			BreakerTrips:  s.res.breaker.Trips(),
			Shed:          s.res.shed.Shed(),
			InFlight:      s.res.shed.InFlight(),
			Waiting:       s.res.shed.Waiting(),
			DeferredQueue: s.res.depth(),
			DeferredPairs: t.deferredPairs,
			Redecided:     t.redecided,
		}
	}
	return st
}

// DispatchStats snapshots the micro-batching dispatcher's counters.
// Enabled reports whether the store was built with
// Options.DispatchPairs > 0.
type DispatchStats struct {
	Enabled bool
	dispatch.Stats
}
