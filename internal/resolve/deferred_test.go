package resolve

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"llm4em/internal/entity"
	"llm4em/internal/llm"
	"llm4em/internal/persist"
	"llm4em/internal/resilience"
)

// outageClient answers like countingClient when up and fails every
// call while down — the unit-test stand-in for a backend outage (the
// chaos package injects richer fault mixes).
type outageClient struct {
	calls atomic.Int64
	down  atomic.Bool
}

func (c *outageClient) Name() string { return "counting" }

func (c *outageClient) Chat(messages []llm.Message) (llm.Response, error) {
	c.calls.Add(1)
	if c.down.Load() {
		return llm.Response{}, errors.New("backend down")
	}
	prompt := messages[len(messages)-1].Content
	answer := "No."
	if strings.Count(prompt, "sameent") >= 2 {
		answer = "Yes."
	}
	return llm.Response{Content: answer, PromptTokens: len(prompt) / 4, CompletionTokens: 2}, nil
}

// resilientOptions is the fast-converging test configuration: trip on
// the first failure, recover within milliseconds.
func resilientOptions() ResilienceOptions {
	return ResilienceOptions{
		Enabled: true,
		Breaker: resilience.BreakerOptions{
			ConsecutiveFailures: 1,
			Cooldown:            time.Millisecond,
		},
		RetryInterval: 2 * time.Millisecond,
	}
}

func waitForStore(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestDegradeAndReescalate(t *testing.T) {
	client := &outageClient{}
	s := New(client, Options{
		Cascade:    CascadeOptions{Disable: true},
		Resilience: resilientOptions(),
	})
	defer s.Close()
	if err := s.Add(rec("r1", "alpha beta sameent0001")); err != nil {
		t.Fatal(err)
	}

	client.down.Store(true)
	res, err := s.Resolve(rec("q1", "alpha beta sameent0001"))
	if err != nil {
		t.Fatalf("Resolve during outage: %v", err)
	}
	if len(res.Decisions) != 1 {
		t.Fatalf("decisions = %d, want 1", len(res.Decisions))
	}
	d := res.Decisions[0]
	if !d.Deferred || d.Method != MethodDeferred {
		t.Fatalf("decision = %+v, want deferred with method %q", d, MethodDeferred)
	}
	if res.Matched() {
		t.Error("deferred match folded into the entity graph before re-escalation")
	}
	st := s.Stats()
	if st.DeferredPairs != 1 || st.Resilience.DeferredQueue != 1 {
		t.Fatalf("DeferredPairs = %d, queue = %d, want 1 and 1",
			st.DeferredPairs, st.Resilience.DeferredQueue)
	}
	if st.Resilience.BreakerState != "open" {
		t.Fatalf("breaker state = %q, want open", st.Resilience.BreakerState)
	}
	if got := s.Degraded(); got != "llm_breaker_open" {
		t.Fatalf("Degraded() = %q, want llm_breaker_open", got)
	}

	client.down.Store(false)
	waitForStore(t, "deferred queue drain", func() bool {
		return s.Stats().Resilience.DeferredQueue == 0
	})
	members, ok := s.Entity("q1")
	if !ok || len(members) != 2 {
		t.Fatalf("entity after re-escalation = %v (ok=%v), want {q1,r1}", members, ok)
	}
	st = s.Stats()
	if st.Redecided != 1 {
		t.Errorf("Redecided = %d, want 1", st.Redecided)
	}
	if got := s.Degraded(); got != "" {
		t.Errorf("Degraded() after recovery = %q, want empty", got)
	}
}

func TestDeadlineDegradesWithoutTrippingBreaker(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	s := New(&hangingClient{block: block}, Options{
		Cascade:    CascadeOptions{Disable: true},
		Resilience: resilientOptions(),
	})
	defer s.Close()
	if err := s.Add(rec("r1", "alpha beta sameent0001")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	res, err := s.ResolveContext(ctx, rec("q1", "alpha beta sameent0001"))
	if err != nil {
		t.Fatalf("ResolveContext with spent deadline: %v", err)
	}
	if !res.Decisions[0].Deferred {
		t.Fatalf("decision = %+v, want deferred", res.Decisions[0])
	}
	// Deadline failures say nothing about backend health; the breaker
	// must stay closed.
	if st := s.Stats().Resilience; st.BreakerState != "closed" {
		t.Errorf("breaker state = %q after deadline, want closed", st.BreakerState)
	}
}

// hangingClient blocks every request until its context expires (or
// the test closes block), exercising deadline propagation.
type hangingClient struct{ block chan struct{} }

func (c *hangingClient) Name() string { return "hanging" }

func (c *hangingClient) Chat(messages []llm.Message) (llm.Response, error) {
	<-c.block
	return llm.Response{}, errors.New("released")
}

func (c *hangingClient) ChatContext(ctx context.Context, messages []llm.Message) (llm.Response, error) {
	select {
	case <-ctx.Done():
		return llm.Response{}, ctx.Err()
	case <-c.block:
		return llm.Response{}, errors.New("released")
	}
}

func TestShedSurfacesAsError(t *testing.T) {
	enter := make(chan struct{})
	release := make(chan struct{})
	client := &gateClient{enter: enter, release: release}
	opts := resilientOptions()
	opts.Shed = resilience.ShedOptions{MaxConcurrent: 1, MaxQueue: 1}
	s := New(client, Options{
		Cascade:    CascadeOptions{Disable: true},
		Resilience: opts,
	})
	defer s.Close()
	if err := s.Add(rec("r1", "alpha beta sameent0001")); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 2)
	go func() {
		_, err := s.Resolve(rec("q1", "alpha beta sameent0001"))
		done <- err
	}()
	<-enter // first resolve holds the only slot, blocked in Chat
	go func() {
		// Distinct titles keep the three prompts distinct — identical
		// prompts would coalesce in the engine's single-flight cache and
		// never reach the shedder-guarded client.
		_, err := s.Resolve(rec("q2", "alpha beta sameent0002"))
		done <- err
	}()
	waitForStore(t, "second resolve to queue", func() bool {
		return s.Stats().Resilience.Waiting == 1
	})

	_, err := s.Resolve(rec("q3", "alpha beta sameent0003"))
	if !errors.Is(err, resilience.ErrShed) {
		t.Fatalf("third concurrent resolve: %v, want ErrShed", err)
	}
	if s.Stats().Resilience.Shed != 1 {
		t.Errorf("Shed = %d, want 1", s.Stats().Resilience.Shed)
	}

	close(release)
	<-enter // admit the queued second resolve
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Errorf("blocked resolve: %v", err)
		}
	}
}

// gateClient signals entry on enter and blocks until release closes,
// then answers Yes.
type gateClient struct {
	enter   chan struct{}
	release chan struct{}
}

func (c *gateClient) Name() string { return "gate" }

func (c *gateClient) Chat(messages []llm.Message) (llm.Response, error) {
	c.enter <- struct{}{}
	<-c.release
	return llm.Response{Content: "Yes.", PromptTokens: 4, CompletionTokens: 2}, nil
}

// TestDeferredConvergesToHealthyRun is the unit-scale differential
// check: an outage-then-recovery run must end with the same durable
// journal and entity groups as an uninterrupted run. (The chaos
// package repeats this at scale with richer fault mixes.)
func TestDeferredConvergesToHealthyRun(t *testing.T) {
	seed := []entity.Record{
		rec("r1", "alpha beta sameent0001"),
		rec("r2", "gamma delta other0001"),
	}
	queries := []entity.Record{
		rec("q1", "alpha beta sameent0001"),
		rec("q2", "gamma delta sameent0002"),
	}
	run := func(dir string, outage bool) *persist.Snapshot {
		client := &outageClient{}
		s, err := Open(client, Options{
			Cascade:    CascadeOptions{Disable: true},
			PersistDir: dir,
			Resilience: resilientOptions(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AddBatch(seed); err != nil {
			t.Fatal(err)
		}
		client.down.Store(outage)
		for _, q := range queries {
			if _, err := s.Resolve(q); err != nil {
				t.Fatalf("resolve %s: %v", q.ID, err)
			}
		}
		if outage {
			client.down.Store(false)
			waitForStore(t, "deferred queue drain", func() bool {
				return s.Stats().Resilience.DeferredQueue == 0
			})
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		snap, ok, err := persist.ReadSnapshot(dir)
		if err != nil || !ok {
			t.Fatalf("ReadSnapshot: ok=%v err=%v", ok, err)
		}
		return snap
	}

	healthy := run(t.TempDir(), false)
	recovered := run(t.TempDir(), true)

	if !reflect.DeepEqual(healthy.Groups, recovered.Groups) {
		t.Errorf("groups diverged:\nhealthy:   %v\nrecovered: %v",
			healthy.Groups, recovered.Groups)
	}
	toMap := func(js []persist.DecisionEntry) map[string]persist.DecisionEntry {
		m := map[string]persist.DecisionEntry{}
		for _, j := range js {
			key := j.QueryID + "|" + j.CandidateID
			j.QueryID = ""
			m[key] = j
		}
		return m
	}
	hj, rj := toMap(healthy.Journal), toMap(recovered.Journal)
	if !reflect.DeepEqual(hj, rj) {
		t.Errorf("journals diverged:\nhealthy:   %v\nrecovered: %v", hj, rj)
	}
	if len(recovered.Deferred) != 0 {
		t.Errorf("recovered snapshot still carries %d deferred pairs", len(recovered.Deferred))
	}
}

// TestResolveAllocBudgetWithResilience pins the fault-tolerance cost
// on the healthy hot path: a resolve with the full resilience layer
// enabled allocates exactly as much as one without — the breaker and
// shedder are atomics and channel operations, and the degradation
// machinery is never touched while the backend answers.
func TestResolveAllocBudgetWithResilience(t *testing.T) {
	build := func(opts Options) *Store {
		s := New(benchClient{}, opts)
		for i := 0; i < 500; i++ {
			if err := s.Add(rec(fmt.Sprintf("r%04d", i),
				fmt.Sprintf("sony camera model%04d", i))); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	measure := func(s *Store) float64 {
		defer s.Close()
		q := rec("q0001", "sony camera digital model0001")
		for i := 0; i < 10; i++ {
			if _, err := s.Resolve(q); err != nil {
				t.Fatal(err)
			}
		}
		return minAllocsPerRun(3, func() {
			if _, err := s.Resolve(q); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := measure(build(Options{}))
	// A long retry interval keeps the idle re-escalator's ticker out of
	// the measurement window.
	resilient := measure(build(Options{Resilience: ResilienceOptions{
		Enabled:       true,
		RetryInterval: time.Hour,
	}}))
	slack := 0.0
	if raceEnabled {
		slack = 1
	}
	if resilient > base+slack {
		t.Errorf("resilience added allocations: %v allocs/op with, %v without", resilient, base)
	}
}

// TestDeferredQueueSurvivesCrash resolves during an outage, abandons
// the store without Close (the crash), and reopens the directory: the
// WAL replay must rebuild the deferred queue and the re-escalator
// must settle it.
func TestDeferredQueueSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	client1 := &outageClient{}
	s1, err := Open(client1, Options{
		Cascade:    CascadeOptions{Disable: true},
		PersistDir: dir,
		Resilience: resilientOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Add(rec("r1", "alpha beta sameent0001")); err != nil {
		t.Fatal(err)
	}
	client1.down.Store(true)
	if _, err := s1.Resolve(rec("q1", "alpha beta sameent0001")); err != nil {
		t.Fatal(err)
	}
	// Crash: stop the background goroutine (its client stays down, so
	// it would otherwise keep probing the shared directory) and drop
	// the store without Close. The WAL keeps the deferred entry.
	s1.stopResilience()

	s2, err := Open(&outageClient{}, Options{
		Cascade:    CascadeOptions{Disable: true},
		PersistDir: dir,
		Resilience: resilientOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	waitForStore(t, "replayed deferred queue drain", func() bool {
		return s2.Stats().Resilience.DeferredQueue == 0
	})
	members, ok := s2.Entity("q1")
	if !ok || len(members) != 2 {
		t.Fatalf("entity after crash recovery = %v (ok=%v), want {q1,r1}", members, ok)
	}
	if st := s2.Stats(); st.Redecided != 1 {
		t.Errorf("Redecided = %d, want 1", st.Redecided)
	}
	// The journal entry must now be the final LLM verdict.
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap, ok, err := persist.ReadSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("ReadSnapshot: ok=%v err=%v", ok, err)
	}
	for _, j := range snap.Journal {
		if j.QueryID == "q1" && j.CandidateID == "r1" {
			if j.Deferred || j.Method != string(MethodLLM) || !j.Match {
				t.Errorf("journal entry after recovery = %+v, want final llm match", j)
			}
			return
		}
	}
	t.Error("journal entry for q1|r1 not found")
}
