package resolve

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"llm4em/internal/cost"
	"llm4em/internal/datasets"
	"llm4em/internal/entity"
	"llm4em/internal/features"
	"llm4em/internal/llm"
	"llm4em/internal/prompt"
	"llm4em/internal/tokenize"
)

// countingClient is a deterministic llm.Client that counts its calls.
// It answers Yes when the prompt mentions the marker token twice (one
// occurrence per entity description), No otherwise.
type countingClient struct {
	calls atomic.Int64
}

func (c *countingClient) Name() string { return "counting" }

func (c *countingClient) Chat(messages []llm.Message) (llm.Response, error) {
	c.calls.Add(1)
	prompt := messages[len(messages)-1].Content
	answer := "No."
	if strings.Count(prompt, "sameent") >= 2 {
		answer = "Yes."
	}
	return llm.Response{Content: answer, PromptTokens: len(prompt) / 4, CompletionTokens: 2}, nil
}

func rec(id, title string) entity.Record {
	return entity.Record{ID: id, Attrs: []entity.Attr{{Name: "title", Value: title}}}
}

// wdcStoreRecords derives a seed collection and query set from the
// WDC benchmark: B-side records seed the store, A-side records query
// it.
func wdcStoreRecords(t testing.TB, n int) (seed, queries []entity.Record) {
	t.Helper()
	ds := datasets.MustLoad("wdc")
	seenB := map[string]bool{}
	seenA := map[string]bool{}
	for _, p := range ds.Test {
		if len(seed) >= n {
			break
		}
		if !seenB[p.B.ID] {
			seed = append(seed, p.B)
			seenB[p.B.ID] = true
		}
		if !seenA[p.A.ID] {
			queries = append(queries, p.A)
			seenA[p.A.ID] = true
		}
	}
	if len(queries) > n {
		queries = queries[:n]
	}
	return seed, queries
}

func TestAddValidation(t *testing.T) {
	s := New(&countingClient{}, Options{})
	if err := s.Add(entity.Record{}); err == nil {
		t.Error("Add accepted a record without ID")
	}
	if err := s.Add(rec("r1", "sony camera")); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := s.Add(rec("r1", "sony camera again")); err == nil {
		t.Error("Add accepted a duplicate ID")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if _, ok := s.Record("r1"); !ok {
		t.Error("Record(r1) not found")
	}
	if _, ok := s.Record("nope"); ok {
		t.Error("Record(nope) found")
	}
	if _, err := s.Resolve(entity.Record{}); err == nil {
		t.Error("Resolve accepted a query without ID")
	}
}

func TestResolveAcceptsIdenticalLocally(t *testing.T) {
	client := &countingClient{}
	s := New(client, Options{})
	if err := s.AddBatch([]entity.Record{
		rec("r1", "sony dsc120b cybershot camera silver"),
		rec("r2", "makita impact drill kit 18v"),
	}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Resolve(rec("q1", "sony dsc120b cybershot camera silver"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matched() {
		t.Fatalf("identical record did not match: %+v", res)
	}
	if res.EntityID != "q1" { // smallest member ID of {q1, r1}
		t.Errorf("EntityID = %q, want q1", res.EntityID)
	}
	if want := []string{"q1", "r1"}; !reflect.DeepEqual(res.Members, want) {
		t.Errorf("Members = %v, want %v", res.Members, want)
	}
	for _, d := range res.Decisions {
		if d.CandidateID == "r1" && d.Method != MethodAccept {
			t.Errorf("identical pair decided by %s, want %s", d.Method, MethodAccept)
		}
	}
	if got := client.calls.Load(); got != 0 {
		t.Errorf("confident resolve made %d LLM calls, want 0", got)
	}
	if res.Cost.LocalFraction() != 1 {
		t.Errorf("LocalFraction = %.2f, want 1", res.Cost.LocalFraction())
	}
}

func TestResolveMergesTransitively(t *testing.T) {
	s := New(&countingClient{}, Options{})
	// r1 and r2 are identical offers; the query matches both, so all
	// three collapse into one entity.
	if err := s.AddBatch([]entity.Record{
		rec("r1", "canon powershot sx620 camera black"),
		rec("r2", "canon powershot sx620 camera black"),
		rec("r3", "epson workforce printer"),
	}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Resolve(rec("q1", "canon powershot sx620 camera black"))
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"q1", "r1", "r2"}; !reflect.DeepEqual(res.Members, want) {
		t.Errorf("Members = %v, want %v", res.Members, want)
	}
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot = %v, want 2 entities", snap)
	}
	if ent, ok := s.Entity("r2"); !ok || !reflect.DeepEqual(ent, []string{"q1", "r1", "r2"}) {
		t.Errorf("Entity(r2) = %v %v", ent, ok)
	}
	if _, ok := s.Entity("ghost"); ok {
		t.Error("Entity(ghost) found")
	}
}

// midBandPair returns two record texts whose cascade probability under
// the Ideal weights falls strictly inside the default uncertain band,
// verified in the test itself.
func midBandPair(t testing.TB, salt int) (a, b string) {
	t.Helper()
	a = fmt.Sprintf("alpha beta gamma delta sameent%04d", salt)
	b = fmt.Sprintf("alpha beta epsilon zeta sameent%04d", salt)
	v, p := features.PairFeaturesText(a, b)
	prob := features.Ideal().Probability(v, p)
	if prob <= DefaultRejectBelow || prob >= DefaultAcceptAbove {
		t.Fatalf("mid-band fixture has probability %.3f outside (%.2f, %.2f)",
			prob, DefaultRejectBelow, DefaultAcceptAbove)
	}
	return a, b
}

func TestUncertainBandGoesToLLM(t *testing.T) {
	client := &countingClient{}
	s := New(client, Options{CacheSize: -1})
	qText, cText := midBandPair(t, 1)
	if err := s.Add(rec("r1", cText)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Resolve(rec("q1", qText))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != 1 || res.Decisions[0].Method != MethodLLM {
		t.Fatalf("decisions = %+v, want one MethodLLM", res.Decisions)
	}
	if !res.Decisions[0].Match {
		t.Error("marker pair should be answered Yes by the fake client")
	}
	if res.Decisions[0].Answer == "" {
		t.Error("LLM decision carries no answer")
	}
	if got := client.calls.Load(); got != 1 {
		t.Errorf("client calls = %d, want 1", got)
	}
	if res.Cost.LLMPairs != 1 || res.Cost.PromptTokens == 0 {
		t.Errorf("cost report %+v, want 1 LLM pair with usage", res.Cost)
	}
	if res.Cost.Priced {
		t.Error("counting client should not be priced")
	}
}

func TestLLMBudgetCapsEscalation(t *testing.T) {
	client := &countingClient{}
	s := New(client, Options{
		CacheSize: -1,
		Cascade:   CascadeOptions{LLMBudget: 1},
	})
	qText, c1 := midBandPair(t, 2)
	_, c2 := midBandPair(t, 2) // same shape, different record
	if err := s.AddBatch([]entity.Record{rec("r1", c1), rec("r2", c2+" extra")}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Resolve(rec("q1", qText))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.LLMPairs != 1 {
		t.Errorf("LLMPairs = %d, want 1 under budget", res.Cost.LLMPairs)
	}
	if res.Cost.BudgetDecided != 1 {
		t.Errorf("BudgetDecided = %d, want 1", res.Cost.BudgetDecided)
	}
	if got := client.calls.Load(); got != 1 {
		t.Errorf("client calls = %d, want 1", got)
	}

	// A negative budget disables LLM calls entirely.
	s2 := New(&countingClient{}, Options{
		CacheSize: -1,
		Cascade:   CascadeOptions{LLMBudget: -1},
	})
	if err := s2.Add(rec("r1", c1)); err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Resolve(rec("q1", qText))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cost.LLMPairs != 0 || res2.Cost.BudgetDecided != 1 {
		t.Errorf("negative budget: %+v", res2.Cost)
	}
}

// TestCascadeSendsFewerPairsToLLM is the acceptance test for the
// cascade: over a realistic workload, a cascade store must issue
// strictly fewer client calls than a no-cascade store while deciding
// every candidate pair.
func TestCascadeSendsFewerPairsToLLM(t *testing.T) {
	seed, queries := wdcStoreRecords(t, 120)

	run := func(cascade CascadeOptions) (int64, uint64, uint64) {
		client := &countingClient{}
		s := New(client, Options{CacheSize: -1, Cascade: cascade})
		if err := s.AddBatch(seed); err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			res, err := s.Resolve(q)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range res.Decisions {
				if d.Method == "" {
					t.Fatalf("undecided pair %s", d.CandidateID)
				}
			}
		}
		st := s.Stats()
		return client.calls.Load(), st.Candidates, st.LLMPairs
	}

	cascadeCalls, cascadePairs, cascadeLLM := run(CascadeOptions{})
	baselineCalls, baselinePairs, baselineLLM := run(CascadeOptions{Disable: true})

	if cascadePairs == 0 || cascadePairs != baselinePairs {
		t.Fatalf("candidate pairs differ: cascade %d baseline %d", cascadePairs, baselinePairs)
	}
	if baselineLLM != baselinePairs {
		t.Errorf("no-cascade run escalated %d of %d pairs, want all", baselineLLM, baselinePairs)
	}
	if cascadeCalls >= baselineCalls {
		t.Errorf("cascade made %d client calls, baseline %d — cascade must be strictly cheaper",
			cascadeCalls, baselineCalls)
	}
	if cascadeLLM >= baselineLLM {
		t.Errorf("cascade escalated %d pairs, baseline %d", cascadeLLM, baselineLLM)
	}
	t.Logf("cascade: %d/%d pairs to LLM (%.0f%% decided locally), baseline %d",
		cascadeLLM, cascadePairs, 100*(1-float64(cascadeLLM)/float64(cascadePairs)), baselineLLM)
}

// TestResolveConcurrentDeterministic is the acceptance test for
// concurrent serving: resolving a batch of queries concurrently must
// produce the same per-pair decisions and the same final entity
// groups as any sequential order.
func TestResolveConcurrentDeterministic(t *testing.T) {
	seed, queries := wdcStoreRecords(t, 80)

	type outcome struct {
		decisions []PairDecision
	}
	run := func(concurrent bool) (map[string]outcome, [][]string) {
		s := New(&countingClient{}, Options{})
		if err := s.AddBatch(seed); err != nil {
			t.Fatal(err)
		}
		results := make(map[string]outcome, len(queries))
		if concurrent {
			var mu sync.Mutex
			var wg sync.WaitGroup
			for _, q := range queries {
				wg.Add(1)
				go func(q entity.Record) {
					defer wg.Done()
					res, err := s.Resolve(q)
					if err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					results[q.ID] = outcome{decisions: res.Decisions}
					mu.Unlock()
				}(q)
			}
			wg.Wait()
		} else {
			// Reverse order, to show order independence too.
			for i := len(queries) - 1; i >= 0; i-- {
				res, err := s.Resolve(queries[i])
				if err != nil {
					t.Fatal(err)
				}
				results[queries[i].ID] = outcome{decisions: res.Decisions}
			}
		}
		return results, s.Snapshot()
	}

	concResults, concSnap := run(true)
	seqResults, seqSnap := run(false)

	if len(concResults) != len(queries) {
		t.Fatalf("concurrent run produced %d results, want %d", len(concResults), len(queries))
	}
	for id, seq := range seqResults {
		conc, ok := concResults[id]
		if !ok {
			t.Fatalf("query %s missing from concurrent run", id)
		}
		if !reflect.DeepEqual(stripCached(seq.decisions), stripCached(conc.decisions)) {
			t.Errorf("query %s: decisions differ\nseq:  %+v\nconc: %+v", id, seq.decisions, conc.decisions)
		}
	}
	if !reflect.DeepEqual(concSnap, seqSnap) {
		t.Errorf("entity snapshots differ:\nconc: %v\nseq:  %v", concSnap, seqSnap)
	}
}

// stripCached zeroes the Cached flag, which legitimately depends on
// scheduling (who populated the shared prompt cache first).
func stripCached(ds []PairDecision) []PairDecision {
	out := make([]PairDecision, len(ds))
	copy(out, ds)
	for i := range out {
		out[i].Cached = false
	}
	return out
}

func TestStatsAccumulate(t *testing.T) {
	client := &countingClient{}
	s := New(client, Options{CacheSize: -1})
	if err := s.Add(rec("r1", "sony dsc120b cybershot camera silver")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resolve(rec("q1", "sony dsc120b cybershot camera silver")); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Records != 1 || st.Resolves != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Entities != 1 { // q1 merged into r1's entity
		t.Errorf("Entities = %d, want 1", st.Entities)
	}
	if st.LocalAccepts == 0 {
		t.Errorf("LocalAccepts = 0, want > 0")
	}
	if st.LocalFraction() != 1 {
		t.Errorf("LocalFraction = %.2f, want 1", st.LocalFraction())
	}
}

func TestPricedStoreReportsCents(t *testing.T) {
	model, err := llm.New("GPT-mini")
	if err != nil {
		t.Fatal(err)
	}
	s := New(model, Options{})
	qText, cText := midBandPair(t, 3)
	if err := s.Add(rec("r1", cText)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Resolve(rec("q1", qText))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cost.Priced {
		t.Fatal("GPT-mini store should be priced")
	}
	if res.Cost.LLMPairs != 1 || res.Cost.Cents <= 0 {
		t.Errorf("cost report %+v, want positive cents for one LLM pair", res.Cost)
	}
	st := s.Stats()
	if !st.Priced || st.Cents != res.Cost.Cents {
		t.Errorf("stats cents = %+v", st)
	}
}

func TestCostBudgetCapsEscalation(t *testing.T) {
	model, err := llm.New("GPT-mini")
	if err != nil {
		t.Fatal(err)
	}
	qText, c1 := midBandPair(t, 4)
	_, c2 := midBandPair(t, 4)

	// Compute the per-pair estimate the cost budget uses: the actual
	// built prompt plus the typical completion size.
	probe := New(model, Options{})
	spec := prompt.Spec{Design: probe.opts.Design, Domain: probe.opts.Domain}
	built := spec.Build(entity.Pair{ID: "q1|r1", A: rec("q1", qText), B: rec("r1", c1)})
	perPair := cost.PerPromptCents(probe.pricing,
		float64(tokenize.EstimateTokens(built)), EstCompletionTokens)
	if perPair <= 0 {
		t.Fatalf("per-pair estimate = %v", perPair)
	}

	// A cap between one and two pairs escalates exactly one.
	s := New(model, Options{
		Cascade: CascadeOptions{MaxCentsPerResolve: perPair * 1.5},
	})
	if err := s.AddBatch([]entity.Record{rec("r1", c1), rec("r2", c2+" extra")}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Resolve(rec("q1", qText))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.LLMPairs != 1 || res.Cost.BudgetDecided != 1 {
		t.Errorf("capped resolve: %+v, want 1 LLM pair and 1 budget-decided", res.Cost)
	}

	// A cap below one pair escalates none.
	s2 := New(model, Options{
		Cascade: CascadeOptions{MaxCentsPerResolve: perPair / 10},
	})
	if err := s2.Add(rec("r1", c1)); err != nil {
		t.Fatal(err)
	}
	res, err = s2.Resolve(rec("q1", qText))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.LLMPairs != 0 || res.Cost.BudgetDecided != 1 {
		t.Errorf("tiny cap: %+v, want no LLM pairs", res.Cost)
	}
}

func TestTypedErrors(t *testing.T) {
	s := New(&countingClient{}, Options{})
	if err := s.Add(entity.Record{}); !errors.Is(err, ErrNoID) {
		t.Errorf("Add without ID: %v, want ErrNoID", err)
	}
	if err := s.Add(rec("r1", "sony camera")); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(rec("r1", "sony camera")); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate Add: %v, want ErrDuplicateID", err)
	}
	if _, err := s.Resolve(entity.Record{}); !errors.Is(err, ErrNoID) {
		t.Errorf("Resolve without ID: %v, want ErrNoID", err)
	}
}
