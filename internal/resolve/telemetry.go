package resolve

import (
	"time"

	"llm4em/internal/telemetry"
)

// stageObserver times the stages of one Resolve call into the store's
// telemetry handle and the request's context trace. It is a plain
// stack value inside ResolveContext: stage durations accumulate in a
// fixed array, histograms are pre-bound, and the finishing slow-log
// check passes the array by value — nothing here forces a heap
// allocation, which is what keeps the instrumented hot path at the
// PR 4 allocation budget. With telemetry disabled and no inbound
// trace the observer is inert: no clock reads, only nil checks.
type stageObserver struct {
	tel   *telemetry.Telemetry
	tr    *telemetry.Trace
	start time.Time
	last  time.Time
	durs  telemetry.StageDurations
}

// newStageObserver builds the observer for one call, picking up the
// context trace (if the HTTP layer attached one).
func (s *Store) newStageObserver(tr *telemetry.Trace) stageObserver {
	o := stageObserver{tel: s.opts.Telemetry, tr: tr}
	if o.active() {
		o.start = time.Now()
		o.last = o.start
	}
	return o
}

// active reports whether any sink wants stage timings.
func (o *stageObserver) active() bool { return o.tel != nil || o.tr != nil }

// lap closes the span since the previous lap and attributes it to the
// stage.
func (o *stageObserver) lap(st telemetry.Stage) {
	if !o.active() {
		return
	}
	now := time.Now()
	o.add(st, now.Sub(o.last))
	o.last = now
}

// lapLLM closes the span since the previous lap — the whole
// escalation — splitting it into model-side time (StageLLM, bounded
// by the wall clock) and everything else: queueing for batch-mates,
// flush waits, scheduling (StageDispatchWait).
func (o *stageObserver) lapLLM(modelLatency time.Duration) {
	if !o.active() {
		return
	}
	now := time.Now()
	d := now.Sub(o.last)
	o.last = now
	if modelLatency > d {
		modelLatency = d
	}
	o.add(telemetry.StageLLM, modelLatency)
	o.add(telemetry.StageDispatchWait, d-modelLatency)
}

// add attributes a duration to a stage in both sinks.
func (o *stageObserver) add(st telemetry.Stage, d time.Duration) {
	o.durs[st] += d
	if o.tel != nil {
		o.tel.Stage[st].Observe(d.Seconds())
	}
	o.tr.Add(st, d)
}

// finish records the call-level counters and runs the slow-resolve
// check. err is the call's outcome; report may be zero on failures.
func (o *stageObserver) finish(queryID string, report CostReport, err error) {
	if o.tel == nil {
		return
	}
	t := o.tel
	t.ResolveTotal.Inc()
	if err != nil {
		t.ResolveErrors.Inc()
	}
	total := time.Since(o.start)
	t.ResolveSeconds.Observe(total.Seconds())
	t.Candidates.Add(uint64(report.Candidates))
	t.OutcomeAccept.Add(uint64(report.LocalAccepts))
	t.OutcomeReject.Add(uint64(report.LocalRejects))
	t.OutcomeLLM.Add(uint64(report.LLMPairs))
	t.OutcomeBudget.Add(uint64(report.BudgetDecided))
	t.OutcomeJournal.Add(uint64(report.JournalHits))
	t.StrategyMatch.Add(uint64(report.MatchUsage.Calls))
	t.StrategyCompare.Add(uint64(report.CompareUsage.Calls))
	t.StrategySelect.Add(uint64(report.SelectUsage.Calls))
	t.StrategyReason.Add(uint64(report.ReasonUsage.Calls))
	t.MaybeLogSlow(o.tr.ID(), queryID, total, o.durs)
}

// Live reports whether the store can still serve mutations: false
// once the dispatcher or the WAL has been closed. Readiness/health
// endpoints poll it; an in-memory store without a dispatcher is
// always live (it has no closable parts).
func (s *Store) Live() bool {
	if s.disp != nil && s.disp.Closed() {
		return false
	}
	if s.wal != nil {
		s.persistMu.Lock()
		closed := s.pstate.closed
		s.persistMu.Unlock()
		if closed {
			return false
		}
	}
	return true
}
