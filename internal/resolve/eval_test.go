package resolve

import (
	"math"
	"reflect"
	"testing"

	"llm4em/internal/datasets"
	"llm4em/internal/entity"
	"llm4em/internal/llm"
)

// evalTestPairs caps a dataset's test split for eval tests, keeping
// both classes represented.
func evalTestPairs(t *testing.T, key string, n int) []entity.Pair {
	t.Helper()
	ds := datasets.MustLoad(key)
	if len(ds.Test) < n {
		n = len(ds.Test)
	}
	return ds.Test[:n]
}

// TestEvaluatePairsSplitsCascade pins the offline eval's routing: the
// three methods partition the pairs, the report's stage counters add
// up, and the confusion covers every pair.
func TestEvaluatePairsSplitsCascade(t *testing.T) {
	model, err := llm.New("GPT-mini")
	if err != nil {
		t.Fatal(err)
	}
	pairs := evalTestPairs(t, "wdc", 150)
	res, err := EvaluatePairs(model, EvalOptions{Domain: entity.Product}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != len(pairs) {
		t.Fatalf("outcomes %d, want %d", len(res.Outcomes), len(pairs))
	}
	var accepts, rejects, llmPairs int
	for i, out := range res.Outcomes {
		if out.PairID != pairs[i].ID || out.Gold != pairs[i].Match {
			t.Fatalf("outcome %d does not describe input pair %q", i, pairs[i].ID)
		}
		switch out.Method {
		case MethodAccept:
			accepts++
			if !out.Match {
				t.Fatal("cascade-accept outcome with Match=false")
			}
		case MethodReject:
			rejects++
			if out.Match {
				t.Fatal("cascade-reject outcome with Match=true")
			}
		case MethodLLM:
			llmPairs++
		default:
			t.Fatalf("outcome %d decided by unexpected method %q", i, out.Method)
		}
	}
	r := res.Report
	if r.Candidates != len(pairs) || r.LocalAccepts != accepts || r.LocalRejects != rejects || r.LLMPairs != llmPairs {
		t.Fatalf("report %+v disagrees with outcomes (accepts %d rejects %d llm %d)",
			r, accepts, rejects, llmPairs)
	}
	if llmPairs == 0 {
		t.Fatal("no pair landed in the uncertain band; the eval exercises nothing")
	}
	if r.PromptTokens == 0 || !r.Priced || r.Cents <= 0 {
		t.Fatalf("LLM usage not accounted: %+v", r)
	}
	if res.Confusion.Total() != len(pairs) {
		t.Fatalf("confusion covers %d pairs, want %d", res.Confusion.Total(), len(pairs))
	}
	if f1 := res.F1(); f1 < 50 || f1 > 100 {
		t.Fatalf("clean WDC F1 = %.1f, outside any plausible range", f1)
	}
}

// TestEvaluatePairsDeterministic pins that evaluation is a pure
// function of (client, options, pairs), including under worker
// concurrency.
func TestEvaluatePairsDeterministic(t *testing.T) {
	model, err := llm.New("GPT-mini")
	if err != nil {
		t.Fatal(err)
	}
	pairs := datasets.ForLevel("det", datasets.CorruptEmbed, 2).CorruptPairs(evalTestPairs(t, "ag", 100))
	a, err := EvaluatePairs(model, EvalOptions{Domain: entity.Product, Workers: 1}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluatePairs(model, EvalOptions{Domain: entity.Product, Workers: 8}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Outcomes, b.Outcomes) || a.Confusion != b.Confusion {
		t.Fatal("evaluation outcomes depend on worker concurrency")
	}
}

// TestEvaluatePairsCorruptionDegrades is the harness's reason to
// exist: heavy corruption must not silently leave quality untouched —
// and must never crash the cascade on empty-after-corruption records.
func TestEvaluatePairsCorruptionDegrades(t *testing.T) {
	model, err := llm.New("GPT-mini")
	if err != nil {
		t.Fatal(err)
	}
	pairs := evalTestPairs(t, "wdc", 200)
	clean, err := EvaluatePairs(model, EvalOptions{Domain: entity.Product}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := EvaluatePairs(model, EvalOptions{Domain: entity.Product},
		datasets.Corruptor{Seed: "degrade", NullOut: 0.6, TypoRate: 0.3, NoiseWords: 3}.CorruptPairs(pairs))
	if err != nil {
		t.Fatal(err)
	}
	if dirty.F1() > clean.F1() {
		t.Fatalf("heavy corruption improved F1: clean %.1f, dirty %.1f", clean.F1(), dirty.F1())
	}
	for i, out := range dirty.Outcomes {
		if math.IsNaN(out.Probability) {
			t.Fatalf("pair %d has NaN probability after corruption", i)
		}
	}
}

// TestEvaluatePairsLLMBudget pins the per-pair budget semantics:
// LLMBudget < 0 keeps the evaluation entirely local.
func TestEvaluatePairsLLMBudget(t *testing.T) {
	client := &countingClient{}
	pairs := evalTestPairs(t, "wdc", 80)
	res, err := EvaluatePairs(client, EvalOptions{
		Domain:  entity.Product,
		Cascade: CascadeOptions{LLMBudget: -1},
	}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if got := client.calls.Load(); got != 0 {
		t.Fatalf("LLMBudget -1 still made %d client calls", got)
	}
	if res.Report.LLMPairs != 0 {
		t.Fatalf("report counts %d LLM pairs under a negative budget", res.Report.LLMPairs)
	}
	if res.Report.BudgetDecided == 0 {
		t.Fatal("no pair was budget-decided; the band was empty and the test is vacuous")
	}
}

// TestEvaluatePairsEmpty pins the degenerate input.
func TestEvaluatePairsEmpty(t *testing.T) {
	res, err := EvaluatePairs(&countingClient{}, EvalOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 0 || res.Confusion.Total() != 0 {
		t.Fatalf("empty input produced %+v", res)
	}
}

// TestLocalProbabilitiesMatchOutcomes pins that the threshold-free
// scorer half agrees with the probabilities EvaluatePairs reports.
func TestLocalProbabilitiesMatchOutcomes(t *testing.T) {
	pairs := evalTestPairs(t, "ds", 60)
	probs := LocalProbabilities(nil, pairs)
	res, err := EvaluatePairs(&countingClient{}, EvalOptions{Domain: entity.Publication}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if probs[i] != res.Outcomes[i].Probability {
			t.Fatalf("pair %d: LocalProbabilities %.6f != outcome probability %.6f",
				i, probs[i], res.Outcomes[i].Probability)
		}
	}
}

// TestLLMVerdictsAnswersEveryPair pins the calibration primitive:
// every pair gets a verdict and the usage is accounted.
func TestLLMVerdictsAnswersEveryPair(t *testing.T) {
	model, err := llm.New("GPT-mini")
	if err != nil {
		t.Fatal(err)
	}
	pairs := evalTestPairs(t, "ds", 40)
	verdicts, report, err := LLMVerdicts(model, EvalOptions{Domain: entity.Publication}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != len(pairs) {
		t.Fatalf("verdicts %d, want %d", len(verdicts), len(pairs))
	}
	if report.LLMPairs != len(pairs) || report.PromptTokens == 0 {
		t.Fatalf("verdict usage not accounted: %+v", report)
	}
	agree := 0
	for i, v := range verdicts {
		if v == pairs[i].Match {
			agree++
		}
	}
	if agree*2 < len(pairs) {
		t.Fatalf("GPT-mini agrees with gold on only %d/%d clean DBLP-Scholar pairs", agree, len(pairs))
	}
}
