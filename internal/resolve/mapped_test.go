package resolve

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"llm4em/internal/blocking"
	"llm4em/internal/persist"
)

// TestMappedRestart is the acceptance test of the mmap restart path: a
// checkpointed store reopens by mapping its per-shard index snapshots
// — every shard mapped, zero LLM calls — and then behaves exactly like
// the store it was: same records, same groups, same resolve decisions,
// and it keeps growing (with duplicate detection against the mapped
// base).
func TestMappedRestart(t *testing.T) {
	seed, queries := wdcStoreRecords(t, 40)
	dir := t.TempDir()

	a, _ := mustOpen(t, dir, Options{})
	if err := a.AddBatch(seed); err != nil {
		t.Fatal(err)
	}
	results := map[string]Result{}
	for _, q := range queries {
		res, err := a.Resolve(q)
		if err != nil {
			t.Fatal(err)
		}
		results[q.ID] = res
	}
	preSnap := a.Snapshot()
	preStats := a.Stats()
	if err := a.Close(); err != nil { // final checkpoint writes the emx generation
		t.Fatal(err)
	}

	b, client := mustOpen(t, dir, Options{})
	defer b.Close()
	ps := b.Stats().Persist
	if ps.MappedShards != DefaultShards || ps.MappedFallback {
		t.Fatalf("mapped recovery stats: %+v, want %d mapped shards", ps, DefaultShards)
	}
	if got := client.calls.Load(); got != 0 {
		t.Fatalf("mapped recovery made %d LLM calls, want 0", got)
	}
	if b.Len() != len(seed) {
		t.Fatalf("mapped Len = %d, want %d", b.Len(), len(seed))
	}
	if !reflect.DeepEqual(b.Snapshot(), preSnap) {
		t.Errorf("mapped snapshot differs from pre-close:\ngot  %v\nwant %v", b.Snapshot(), preSnap)
	}
	if got, want := persistedStats(b.Stats()), persistedStats(preStats); !reflect.DeepEqual(got, want) {
		t.Errorf("mapped stats differ:\ngot  %+v\nwant %+v", got, want)
	}
	for _, r := range seed {
		got, ok := b.Record(r.ID)
		if !ok || !reflect.DeepEqual(got, r) {
			t.Fatalf("mapped Record(%q) = %+v,%v, want the seed record", r.ID, got, ok)
		}
	}
	// Re-resolving against the mapped base answers from the journal
	// with the same decisions — blocking over mmap'ed postings included.
	for _, q := range queries {
		res, err := b.Resolve(q)
		if err != nil {
			t.Fatal(err)
		}
		orig := results[q.ID]
		if !reflect.DeepEqual(stripReplay(res.Decisions), stripReplay(orig.Decisions)) {
			t.Errorf("query %s: mapped decisions differ\ngot  %+v\nwant %+v", q.ID, res.Decisions, orig.Decisions)
		}
	}
	if got := client.calls.Load(); got != 0 {
		t.Fatalf("journaled re-resolves made %d LLM calls, want 0", got)
	}

	// The mapped store keeps growing: duplicates of mapped records are
	// rejected, new records index into the overlay and resolve.
	if err := b.Add(seed[0]); err == nil {
		t.Error("Add accepted a duplicate of a mapped record")
	}
	if err := b.Add(rec("post-open", "freshly added record")); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Record("post-open"); !ok {
		t.Error("post-open record not found")
	}
	if b.Len() != len(seed)+1 {
		t.Errorf("Len after post-open Add = %d, want %d", b.Len(), len(seed)+1)
	}
}

// TestMappedCheckpointCycles pins that checkpoint generations chain: a
// mapped store that grows and checkpoints again writes a new epoch,
// cleans the old one up, and reopens from the merged state.
func TestMappedCheckpointCycles(t *testing.T) {
	seed, _ := wdcStoreRecords(t, 12)
	dir := t.TempDir()

	a, _ := mustOpen(t, dir, Options{})
	if err := a.AddBatch(seed[:6]); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, _ := mustOpen(t, dir, Options{})
	if got := b.Stats().Persist.MappedShards; got != DefaultShards {
		t.Fatalf("first reopen mapped %d shards, want %d", got, DefaultShards)
	}
	if err := b.AddBatch(seed[6:]); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	c, _ := mustOpen(t, dir, Options{})
	defer c.Close()
	ps := c.Stats().Persist
	if ps.MappedShards != DefaultShards || ps.IndexEpoch != 2 {
		t.Fatalf("second reopen persist stats: %+v, want epoch 2 fully mapped", ps)
	}
	if c.Len() != len(seed) {
		t.Fatalf("Len after two checkpoint cycles = %d, want %d", c.Len(), len(seed))
	}
	for _, r := range seed {
		if _, ok := c.Record(r.ID); !ok {
			t.Fatalf("record %q lost across checkpoint cycles", r.ID)
		}
	}
	// Exactly one emx generation remains on disk.
	matches, err := filepath.Glob(filepath.Join(dir, "index-*.emx"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != DefaultShards {
		t.Fatalf("%d emx files on disk after cleanup, want %d: %v", len(matches), DefaultShards, matches)
	}
	for i := 0; i < DefaultShards; i++ {
		p := filepath.Join(dir, persist.IndexFileName(2, i))
		if _, err := os.Stat(p); err != nil {
			t.Errorf("epoch-2 shard file missing: %v", err)
		}
	}
}

// TestMappedTornFallsBack pins satellite robustness: damaged index
// snapshots — truncated, or written by a future format version — never
// fail Open. Recovery flags the fallback, keeps the JSON snapshot and
// WAL contents, and the store serves and grows normally.
func TestMappedTornFallsBack(t *testing.T) {
	damage := map[string]func(t *testing.T, path string){
		"truncated": func(t *testing.T, path string) {
			if err := os.Truncate(path, 64); err != nil {
				t.Fatal(err)
			}
		},
		"version-bump": func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Flip the 64-bit version and fix the header CRC up, so only
			// the typed version check can object.
			binary.LittleEndian.PutUint64(b[8:], 999)
			end := 8 + 32 + 8*16
			binary.LittleEndian.PutUint32(b[end:], crc32.ChecksumIEEE(b[:end]))
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, damage := range damage {
		t.Run(name, func(t *testing.T) {
			seed, _ := wdcStoreRecords(t, 10)
			dir := t.TempDir()
			a, _ := mustOpen(t, dir, Options{})
			if err := a.AddBatch(seed); err != nil {
				t.Fatal(err)
			}
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
			damage(t, filepath.Join(dir, persist.IndexFileName(1, 0)))

			b, _ := mustOpen(t, dir, Options{})
			defer b.Close()
			ps := b.Stats().Persist
			if !ps.MappedFallback || ps.MappedShards != 0 {
				t.Fatalf("persist stats after damage: %+v, want fallback with no mapped shards", ps)
			}
			// The mapped generation carried the records, so the degraded
			// store starts without them — but it must serve and grow
			// cleanly, and the next checkpoint re-establishes a healthy
			// generation.
			if err := b.Add(rec("after-damage", "recovered ingest path")); err != nil {
				t.Fatal(err)
			}
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
			c, _ := mustOpen(t, dir, Options{})
			defer c.Close()
			if got := c.Stats().Persist.MappedShards; got != DefaultShards {
				t.Fatalf("re-checkpointed store mapped %d shards, want %d", got, DefaultShards)
			}
			if _, ok := c.Record("after-damage"); !ok {
				t.Error("record added after the damage did not survive the next cycle")
			}
		})
	}
}

// TestMappedReshard: reopening with a different shard count cannot use
// the per-shard maps — recovery re-inserts every mapped record under
// the new routing and the store is fully equivalent.
func TestMappedReshard(t *testing.T) {
	seed, queries := wdcStoreRecords(t, 20)
	dir := t.TempDir()
	a, _ := mustOpen(t, dir, Options{})
	if err := a.AddBatch(seed); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, client := mustOpen(t, dir, Options{Shards: 3})
	defer b.Close()
	ps := b.Stats().Persist
	if ps.MappedShards != 0 || ps.MappedFallback {
		t.Fatalf("reshard persist stats: %+v, want a rebuilt (not mapped, not fallback) store", ps)
	}
	if b.Len() != len(seed) {
		t.Fatalf("resharded Len = %d, want %d", b.Len(), len(seed))
	}
	for _, r := range seed {
		if got, ok := b.Record(r.ID); !ok || !reflect.DeepEqual(got, r) {
			t.Fatalf("resharded Record(%q) = %+v,%v", r.ID, got, ok)
		}
	}
	if got := client.calls.Load(); got != 0 {
		t.Fatalf("reshard made %d LLM calls, want 0", got)
	}
	for _, q := range queries[:5] {
		if _, err := b.Resolve(q); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDeferExtraction pins the deferred-extraction ingest mode:
// resolve results are identical to the eager store's, and the lazily
// materialized extractions are cached after the first touch.
func TestDeferExtraction(t *testing.T) {
	seed, queries := wdcStoreRecords(t, 30)

	eager := New(&countingClient{}, Options{})
	deferred := New(&countingClient{}, Options{DeferExtraction: true})
	if err := eager.AddBatch(seed); err != nil {
		t.Fatal(err)
	}
	if err := deferred.AddBatch(seed); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		a, err := eager.Resolve(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := deferred.Resolve(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Decisions, b.Decisions) {
			t.Fatalf("query %s: deferred decisions differ\ngot  %+v\nwant %+v", q.ID, b.Decisions, a.Decisions)
		}
	}
	if !reflect.DeepEqual(eager.Snapshot(), deferred.Snapshot()) {
		t.Error("deferred-extraction store groups records differently")
	}
	// Candidates touched above now have cached extractions.
	cached := 0
	for _, sh := range deferred.shards {
		sh.mu.RLock()
		for _, e := range sh.ext {
			if e != nil {
				cached++
			}
		}
		sh.mu.RUnlock()
	}
	if cached == 0 {
		t.Error("no extraction was cached by the lazy fill")
	}
}

// TestDeferExtractionPersistent: the deferred mode survives a
// checkpoint + mapped reopen (which defers every mapped record's
// extraction regardless of the option).
func TestDeferExtractionPersistent(t *testing.T) {
	seed, queries := wdcStoreRecords(t, 15)
	dir := t.TempDir()
	a, _ := mustOpen(t, dir, Options{DeferExtraction: true})
	if err := a.AddBatch(seed); err != nil {
		t.Fatal(err)
	}
	control := map[string]Result{}
	for _, q := range queries {
		res, err := a.Resolve(q)
		if err != nil {
			t.Fatal(err)
		}
		control[q.ID] = res
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	b, _ := mustOpen(t, dir, Options{DeferExtraction: true})
	defer b.Close()
	for _, q := range queries {
		res, err := b.Resolve(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripReplay(res.Decisions), stripReplay(control[q.ID].Decisions)) {
			t.Fatalf("query %s: decisions differ after deferred recovery", q.ID)
		}
	}
}

// TestBlockingOptionsPrecedence pins the v1 Options.Blocking wiring: a
// set pointer field wins over the flat sentinel fields, and the
// sentinel encoding still resolves for old callers.
func TestBlockingOptionsPrecedence(t *testing.T) {
	cases := []struct {
		name            string
		opts            Options
		minScore, dfrac float64
	}{
		{"defaults", Options{}, DefaultMinScore, DefaultStopDocFrac},
		{"flat-sentinels", Options{MinScore: -1, StopDocFrac: -1}, 0, 0},
		{"blocking-explicit-zero", Options{
			MinScore: 3, StopDocFrac: 0.9,
			Blocking: &blocking.IndexOptions{MinScore: blocking.Float(0), StopDocFrac: blocking.Float(0)},
		}, 0, 0},
		{"blocking-values", Options{
			Blocking: &blocking.IndexOptions{MinScore: blocking.Float(2.5), StopDocFrac: blocking.Float(0.4)},
		}, 2.5, 0.4},
	}
	for _, tc := range cases {
		o := tc.opts.withDefaults()
		if o.MinScore != tc.minScore || o.StopDocFrac != tc.dfrac {
			t.Errorf("%s: resolved (MinScore=%v, StopDocFrac=%v), want (%v, %v)",
				tc.name, o.MinScore, o.StopDocFrac, tc.minScore, tc.dfrac)
		}
		b := o.blockingOptions()
		if *b.MinScore != tc.minScore || *b.StopDocFrac != tc.dfrac {
			t.Errorf("%s: blockingOptions (MinScore=%v, StopDocFrac=%v), want (%v, %v)",
				tc.name, *b.MinScore, *b.StopDocFrac, tc.minScore, tc.dfrac)
		}
	}
}

// TestMappedFallbackQuarantine pins the degraded-open housekeeping: a
// generation this build cannot read is never garbage-collected (a
// correctly-versioned binary may still recover it), and the next
// checkpoint commits a fresh epoch number instead of renaming new
// shard files over the one snapshot.json still references.
func TestMappedFallbackQuarantine(t *testing.T) {
	seed, _ := wdcStoreRecords(t, 10)
	dir := t.TempDir()
	a, _ := mustOpen(t, dir, Options{})
	if err := a.AddBatch(seed); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil { // commits epoch 1
		t.Fatal(err)
	}
	// Bump the format version of one epoch-1 shard (CRC fixed up) so
	// only the typed version check rejects it — the version-skew shape
	// of fallback, where the bytes are valuable to another binary.
	path := filepath.Join(dir, persist.IndexFileName(1, 0))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(raw[8:], 999)
	end := 8 + 32 + 8*16
	binary.LittleEndian.PutUint32(raw[end:], crc32.ChecksumIEEE(raw[:end]))
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	b, _ := mustOpen(t, dir, Options{})
	if !b.Stats().Persist.MappedFallback {
		t.Fatal("damaged generation did not trigger fallback")
	}
	if err := b.Add(rec("post-fallback", "added while degraded")); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil { // checkpoints a fresh generation
		t.Fatal(err)
	}

	// Every epoch-1 file survives, untouched where damaged.
	for i := 0; i < DefaultShards; i++ {
		if _, err := os.Stat(filepath.Join(dir, persist.IndexFileName(1, i))); err != nil {
			t.Errorf("quarantined epoch-1 shard %d missing: %v", i, err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil || !reflect.DeepEqual(got, raw) {
		t.Errorf("quarantined shard file was rewritten (err=%v)", err)
	}

	// The committed binding moved past the unreadable epoch.
	snap, ok, err := persist.ReadSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("ReadSnapshot: ok=%v err=%v", ok, err)
	}
	if snap.IndexShards == 0 || snap.IndexEpoch <= 1 {
		t.Fatalf("post-fallback checkpoint bound epoch %d over %d shards, want a fresh epoch > 1",
			snap.IndexEpoch, snap.IndexShards)
	}

	// And the fresh generation serves: fully mapped, record intact.
	c, _ := mustOpen(t, dir, Options{})
	defer c.Close()
	ps := c.Stats().Persist
	if ps.MappedShards != DefaultShards || ps.MappedFallback {
		t.Fatalf("reopen after quarantine: %+v, want %d mapped shards", ps, DefaultShards)
	}
	if _, ok := c.Record("post-fallback"); !ok {
		t.Error("record added while degraded did not survive")
	}
}
