package resolve

import (
	"sort"

	"llm4em/internal/features"
	"llm4em/internal/prompt"
)

// Cascade threshold defaults: candidate pairs whose locally computed
// match probability falls outside [DefaultRejectBelow,
// DefaultAcceptAbove] are decided without a model call.
const (
	DefaultAcceptAbove = 0.90
	DefaultRejectBelow = 0.15
)

// CascadeOptions tunes the cascade matcher: a calibrated local scorer
// (features.Weights over the pair feature vector) answers the
// confident pairs, and only the uncertain band between the thresholds
// is escalated to the LLM. This is the composite-matcher deployment
// shape of the related work — cheap scorer first, model calls reserved
// for pairs the scorer cannot settle.
type CascadeOptions struct {
	// AcceptAbove accepts a pair locally when its probability is at
	// least this value (default DefaultAcceptAbove). The zero value
	// selects the default; a negative value escalates every
	// non-rejected pair.
	AcceptAbove float64
	// RejectBelow rejects a pair locally when its probability is at
	// most this value (default DefaultRejectBelow; negative selects a
	// literal zero, i.e. never reject locally on the low side unless
	// the probability is exactly zero).
	RejectBelow float64
	// Weights are the local scorer's calibrated weights (nil selects
	// features.Ideal).
	Weights *features.Weights
	// LLMBudget caps how many uncertain pairs one Resolve call may send
	// to the LLM; the hardest pairs (probability closest to 0.5) get
	// the budget, the rest are decided locally at probability 0.5. Zero
	// means unlimited; negative means no LLM calls at all.
	LLMBudget int
	// MaxCentsPerResolve caps the estimated spend of one Resolve call
	// in US cents for clients with hosted pricing: LLM escalation stops
	// once the estimate reaches the cap. The estimate prices each
	// pair's actual built prompt plus a typical completion size, so
	// the billed amount can differ slightly for verbose models. Zero
	// or negative means uncapped, as does a client without a price
	// entry.
	MaxCentsPerResolve float64
	// Disable routes every candidate pair to the LLM, bypassing the
	// local scorer — the no-cascade baseline.
	Disable bool
	// Strategy selects the prompt formulation for the uncertain band
	// ("Match, Compare, or Select?", Wang et al.): StrategyMatch (the
	// zero value) sends one independent pairwise prompt per uncertain
	// pair; StrategyCompare and StrategySelect answer all of a query's
	// uncertain pairs with a single grouped prompt — one LLM call per
	// escalated query instead of one per pair — with strict parsing
	// and per-pair pairwise fallback when a reply is malformed.
	Strategy prompt.Strategy
	// ReasonTier escalates pairs whose first-pass LLM verdict
	// conflicts with the local scorer's probability — the pairs the
	// first pass left least settled — into a structured multi-step
	// reasoning prompt (Bopardikar et al.) whose verdict replaces the
	// first-pass decision. Works under every Strategy.
	ReasonTier bool
}

func (o CascadeOptions) acceptAbove() float64 {
	if o.AcceptAbove < 0 {
		return 1.01 // never accept locally
	}
	if o.AcceptAbove == 0 {
		return DefaultAcceptAbove
	}
	return o.AcceptAbove
}

func (o CascadeOptions) rejectBelow() float64 {
	if o.RejectBelow < 0 {
		return 0
	}
	if o.RejectBelow == 0 {
		return DefaultRejectBelow
	}
	return o.RejectBelow
}

func (o CascadeOptions) strategy() prompt.Strategy {
	if o.Strategy == "" {
		return prompt.StrategyMatch
	}
	return o.Strategy
}

func (o CascadeOptions) weights() features.Weights {
	if o.Weights != nil {
		return *o.Weights
	}
	return features.Ideal()
}

// Method records which stage of the cascade decided a pair.
type Method string

// Cascade decision methods.
const (
	// MethodAccept: the local scorer was confident the pair matches.
	MethodAccept Method = "cascade-accept"
	// MethodReject: the local scorer was confident the pair differs.
	MethodReject Method = "cascade-reject"
	// MethodLLM: the pair was in the uncertain band and an LLM decided.
	MethodLLM Method = "llm"
	// MethodBudget: the pair was uncertain but the LLM budget was
	// exhausted, so the local probability decided at 0.5.
	MethodBudget Method = "budget-local"
	// MethodCompare and MethodSelect: a grouped compare/select prompt
	// over the query's whole uncertain candidate set decided the pair.
	// A grouped reply that failed strict parsing degrades its pairs to
	// individual pairwise prompts, recorded as MethodLLM.
	MethodCompare Method = "llm-compare"
	MethodSelect  Method = "llm-select"
	// MethodReason: the reason tier's structured multi-step reasoning
	// prompt re-decided the pair after the first LLM pass.
	MethodReason Method = "llm-reason"
	// MethodDeferred: the pair was in the uncertain band but the LLM
	// backend was unavailable (breaker open, deadline spent, or retries
	// exhausted), so the local probability decided at 0.5 tentatively.
	// The pair is queued for background re-escalation; its decision
	// carries Deferred=true until an EntryRedecide replaces it.
	MethodDeferred Method = "deferred-local"
)

// Journaled decisions keep the Method of the stage that originally
// decided them; the PairDecision.Journaled flag marks the replay.

// PairDecision is the outcome of one candidate pair within a Resolve
// call.
type PairDecision struct {
	// CandidateID is the stored record the query was compared to.
	CandidateID string
	// BlockScore is the summed-IDF blocking score of the candidate.
	BlockScore float64
	// Probability is the local scorer's calibrated match probability.
	Probability float64
	// Match is the final decision.
	Match bool
	// Method is the cascade stage that decided.
	Method Method
	// Answer is the LLM's raw reply for MethodLLM decisions, "".
	Answer string
	// Cached reports whether an LLM decision came from the prompt
	// cache.
	Cached bool
	// Batched reports that the LLM decision rode a cross-request
	// batched prompt (Options.DispatchPairs) rather than its own
	// round-trip. Like Cached it is transport accounting: which batch
	// a pair lands in depends on concurrent traffic, the decision
	// content does not.
	Batched bool
	// Journaled reports that the decision was replayed from the
	// durable decision journal of a persistent store — no scoring and
	// no LLM call happened in this Resolve; Method and Answer are
	// those of the original decision.
	Journaled bool
	// Deferred reports a tentative verdict issued while the LLM
	// backend was unavailable: the local scorer decided at probability
	// 0.5 and the pair was queued for background re-escalation. A
	// deferred match is NOT folded into the entity graph until the
	// re-escalator confirms it — union-find merges cannot be undone.
	Deferred bool
}

// CostReport accounts one Resolve call: how the cascade split the
// candidate pairs and what the LLM share cost.
type CostReport struct {
	// Candidates is the number of candidate pairs blocking produced.
	Candidates int
	// LocalAccepts and LocalRejects are pairs the local scorer decided
	// confidently.
	LocalAccepts int
	LocalRejects int
	// LLMPairs is the number of pairs escalated to the LLM.
	LLMPairs int
	// CacheHits counts escalated pairs answered by the prompt cache
	// rather than a fresh client call.
	CacheHits int
	// BatchedPairs counts LLM pairs answered from a cross-request
	// batched prompt; Batches is the number of distinct batched
	// round-trips they rode. Batches are shared across concurrent
	// Resolve calls, so summing Batches over calls can exceed the
	// dispatcher's own round-trip count.
	BatchedPairs int
	Batches      int
	// BatchFallbacks counts pairs answered by an individual per-pair
	// prompt after their batched reply failed to parse cleanly.
	BatchFallbacks int
	// BudgetDecided is the number of uncertain pairs decided locally
	// because the LLM or cost budget was exhausted.
	BudgetDecided int
	// JournalHits is the number of pairs replayed from the durable
	// decision journal of a persistent store.
	JournalHits int
	// DeferredPairs is the number of uncertain pairs this call degraded
	// to their tentative local verdict because the LLM backend was
	// unavailable (see PairDecision.Deferred).
	DeferredPairs int
	// PromptTokens and CompletionTokens sum the LLM usage (cached
	// decisions carry the accounting of the original request).
	PromptTokens     int
	CompletionTokens int
	// GroupFallbacks counts pairs answered by an individual pairwise
	// prompt after their grouped compare/select reply failed strict
	// parsing.
	GroupFallbacks int
	// MatchUsage, CompareUsage, SelectUsage and ReasonUsage split the
	// call's LLM activity by the prompt strategy that produced it:
	// pairwise match prompts (including batch-dispatcher traffic and
	// grouped-reply fallbacks), grouped compare prompts, grouped
	// select prompts, and reason-tier prompts. Reading Calls against
	// Pairs shows the grouped strategies' saving — one call deciding
	// several pairs.
	MatchUsage   StrategyUsage
	CompareUsage StrategyUsage
	SelectUsage  StrategyUsage
	ReasonUsage  StrategyUsage
	// Cents is the estimated spend under the client's hosted pricing;
	// Priced reports whether a price entry exists for the model.
	Cents  float64
	Priced bool
}

// StrategyUsage accounts one prompt strategy's share of a Resolve
// call (or, in Stats, of the store's lifetime).
type StrategyUsage struct {
	// Calls is the number of fresh client round-trips the strategy
	// issued; cache-served answers cost none, and a grouped or batched
	// prompt counts once however many pairs rode it.
	Calls int
	// Pairs is the number of pair decisions the strategy produced.
	Pairs int
	// PromptTokens and CompletionTokens sum the strategy's share of
	// the LLM usage.
	PromptTokens     int
	CompletionTokens int
}

// LocalFraction returns the fraction of candidate pairs decided
// without an LLM call — the cascade's saving.
func (c CostReport) LocalFraction() float64 {
	if c.Candidates == 0 {
		return 1
	}
	return 1 - float64(c.LLMPairs)/float64(c.Candidates)
}

// cascadePlan partitions scored candidate pairs into locally decided
// ones and the LLM band, honoring thresholds and budget.
type cascadePlan struct {
	decisions []PairDecision // Method/Match filled for local ones
	llm       []int          // indices into decisions to escalate
	report    CostReport
}

// plan scores each candidate pair with the local scorer and decides
// which stage answers it. query is the extraction of the serialized
// query (computed once per Resolve); candExts/candIDs/blockScores
// describe the candidates in rank order, with extractions served from
// the store's per-record cache. estimateCents prices one pair's
// prospective LLM call for the cost budget; nil disables the cost cap
// (no hosted pricing).
func (o CascadeOptions) plan(query features.Extracted, candIDs []string, candExts []*features.Extracted, blockScores []float64, estimateCents func(i int) float64) cascadePlan {
	p := cascadePlan{decisions: make([]PairDecision, len(candIDs))}
	p.report.Candidates = len(candIDs)

	accept, reject := o.acceptAbove(), o.rejectBelow()
	ws := o.weights()
	var uncertain []int
	for i, id := range candIDs {
		v, pres := features.PairFeatures(query, *candExts[i])
		prob := ws.Probability(v, pres)
		d := PairDecision{
			CandidateID: id,
			BlockScore:  blockScores[i],
			Probability: prob,
		}
		switch {
		case o.Disable:
			uncertain = append(uncertain, i)
		case prob >= accept:
			d.Match = true
			d.Method = MethodAccept
			p.report.LocalAccepts++
		case prob <= reject:
			d.Match = false
			d.Method = MethodReject
			p.report.LocalRejects++
		default:
			uncertain = append(uncertain, i)
		}
		p.decisions[i] = d
	}

	// Spend the LLM budget on the hardest pairs first: closest to
	// probability 0.5, ties broken by candidate rank for determinism.
	sort.SliceStable(uncertain, func(a, b int) bool {
		da := hardness(p.decisions[uncertain[a]].Probability)
		db := hardness(p.decisions[uncertain[b]].Probability)
		if da != db {
			return da < db
		}
		return uncertain[a] < uncertain[b]
	})
	maxPairs := len(uncertain)
	if o.LLMBudget > 0 && o.LLMBudget < maxPairs {
		maxPairs = o.LLMBudget
	}
	if o.LLMBudget < 0 {
		maxPairs = 0
	}
	spentCents, capped := 0.0, false
	for _, di := range uncertain {
		take := len(p.llm) < maxPairs && !capped
		if take && o.MaxCentsPerResolve > 0 && estimateCents != nil {
			if c := estimateCents(di); spentCents+c > o.MaxCentsPerResolve {
				// Remaining pairs are at least as cheap only by
				// chance; stop deterministically at the first
				// unaffordable one.
				take, capped = false, true
			} else {
				spentCents += c
			}
		}
		if take {
			p.llm = append(p.llm, di)
			continue
		}
		d := &p.decisions[di]
		d.Match = d.Probability > 0.5
		d.Method = MethodBudget
		p.report.BudgetDecided++
	}
	sort.Ints(p.llm)
	return p
}

// EstCompletionTokens is the typical zero-shot completion size used
// to pre-estimate per-pair spend for the cost budget (the paper's
// Table 8 mean); the prompt side is priced from the actual prompt.
const EstCompletionTokens = 40

// hardness is the distance of a probability from maximal uncertainty.
func hardness(p float64) float64 {
	if p < 0.5 {
		return 0.5 - p
	}
	return p - 0.5
}
