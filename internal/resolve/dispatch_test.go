package resolve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"llm4em/internal/entity"
	"llm4em/internal/llm"
	"llm4em/internal/prompt"
)

// batchConsistentClient is a deterministic client whose batched
// answers agree with its per-pair answers — the contract under which
// the micro-batching dispatcher preserves decisions exactly. Each
// synthetic record carries one "sameent<salt>" marker token; a pair
// matches iff both sides carry the same even salt. Per-pair prompts
// are answered "Yes."/"No.", batched prompts with one "<i>. Yes." /
// "<i>. No." line per pair, so the dispatcher's per-pair extraction
// reproduces the per-pair answer byte for byte.
type batchConsistentClient struct {
	calls atomic.Int64
	// latency, when set, delays every reply — used to model a real
	// hosted LLM so that round-trip counts dominate wall-clock time.
	latency time.Duration
}

func (c *batchConsistentClient) Name() string { return "batch-consistent" }

func (c *batchConsistentClient) Chat(messages []llm.Message) (llm.Response, error) {
	c.calls.Add(1)
	if c.latency > 0 {
		time.Sleep(c.latency)
	}
	content := messages[len(messages)-1].Content
	if strings.HasPrefix(content, prompt.BatchInstruction) {
		blocks := strings.Split(content, "Pair ")[1:]
		var b strings.Builder
		for i, blk := range blocks {
			fmt.Fprintf(&b, "%d. %s\n", i+1, saltAnswer(saltsOf(blk)))
		}
		return llm.Response{
			Content:      strings.TrimRight(b.String(), "\n"),
			PromptTokens: len(content) / 4, CompletionTokens: 3 * len(blocks),
		}, nil
	}
	return llm.Response{
		Content:      saltAnswer(saltsOf(content)),
		PromptTokens: len(content) / 4, CompletionTokens: 2,
	}, nil
}

// saltsOf extracts the numeric suffixes of every "sameent<digits>"
// marker in order of appearance.
func saltsOf(s string) []string {
	var out []string
	for {
		i := strings.Index(s, "sameent")
		if i < 0 {
			return out
		}
		s = s[i+len("sameent"):]
		j := 0
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		out = append(out, s[:j])
		s = s[j:]
	}
}

// saltAnswer decides one pair from its two marker salts.
func saltAnswer(salts []string) string {
	if len(salts) == 2 && salts[0] != "" && salts[0] == salts[1] {
		if n, err := strconv.Atoi(salts[0]); err == nil && n%2 == 0 {
			return "Yes."
		}
	}
	return "No."
}

// dispatchWorkload builds n store records and n query records such
// that each query blocks to exactly its own candidate (the unique
// marker token is the only non-stop shared token) and every such pair
// falls in the cascade's uncertain band — n resolvers, n uncertain
// pairs, nothing decided locally.
func dispatchWorkload(t testing.TB, n int) (seed, queries []entity.Record) {
	t.Helper()
	for i := 0; i < n; i++ {
		a, b := midBandPair(t, i)
		seed = append(seed, rec(fmt.Sprintf("r%03d", i), b))
		queries = append(queries, rec(fmt.Sprintf("q%03d", i), a))
	}
	return seed, queries
}

// pinnedDecision is the decision content compared between the batched
// and unbatched paths: everything except the transport markers
// (Cached, Batched), which legitimately depend on concurrent traffic.
type pinnedDecision struct {
	CandidateID string  `json:"candidate_id"`
	BlockScore  float64 `json:"block_score"`
	Probability float64 `json:"probability"`
	Match       bool    `json:"match"`
	Method      Method  `json:"method"`
	Answer      string  `json:"answer"`
}

func pinDecisions(ds []PairDecision) []byte {
	out := make([]pinnedDecision, len(ds))
	for i, d := range ds {
		out[i] = pinnedDecision{
			CandidateID: d.CandidateID,
			BlockScore:  d.BlockScore,
			Probability: d.Probability,
			Match:       d.Match,
			Method:      d.Method,
			Answer:      d.Answer,
		}
	}
	b, err := json.Marshal(out)
	if err != nil {
		panic(err)
	}
	return b
}

// TestDispatchDifferentialByteIdentical is the acceptance pin of the
// micro-batching dispatcher: at 64 concurrent resolvers, a store
// resolving through cross-request batched prompts must produce
// byte-identical decision content — candidate, scores, probability,
// match, method, and the answer text itself — and identical entity
// groups to the unbatched cascade, for a client whose batch answers
// are consistent with its per-pair answers.
func TestDispatchDifferentialByteIdentical(t *testing.T) {
	const n = 64
	seed, queries := dispatchWorkload(t, n)

	run := func(dispatchPairs int, concurrent bool) (map[string][]byte, [][]string, int64, uint64, Stats) {
		client := &batchConsistentClient{}
		s := New(client, Options{
			DispatchPairs: dispatchPairs,
			// Generous deadline: every resolver must get the chance to
			// join a batch even on a slow, loaded CI host.
			DispatchFlush: 50 * time.Millisecond,
		})
		if err := s.AddBatch(seed); err != nil {
			t.Fatal(err)
		}
		pinned := make(map[string][]byte, len(queries))
		if concurrent {
			var mu sync.Mutex
			var wg sync.WaitGroup
			for _, q := range queries {
				wg.Add(1)
				go func(q entity.Record) {
					defer wg.Done()
					res, err := s.Resolve(q)
					if err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					pinned[q.ID] = pinDecisions(res.Decisions)
					mu.Unlock()
				}(q)
			}
			wg.Wait()
		} else {
			for _, q := range queries {
				res, err := s.Resolve(q)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Decisions) != 1 || res.Decisions[0].Method != MethodLLM {
					t.Fatalf("workload drift: query %s decisions %+v, want exactly one MethodLLM pair", q.ID, res.Decisions)
				}
				pinned[q.ID] = pinDecisions(res.Decisions)
			}
		}
		st := s.Stats()
		calls := client.calls.Load()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return pinned, s.Snapshot(), calls, st.LLMPairs, st
	}

	unbatched, uSnap, uCalls, uPairs, _ := run(0, false)
	batched, bSnap, bCalls, bPairs, bStats := run(16, true)

	if uPairs != n || bPairs != n {
		t.Fatalf("LLM pairs: unbatched %d, batched %d, want %d each", uPairs, bPairs, n)
	}
	for id, want := range unbatched {
		got, ok := batched[id]
		if !ok {
			t.Fatalf("query %s missing from batched run", id)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("query %s: decisions differ\nunbatched: %s\nbatched:   %s", id, want, got)
		}
	}
	if !reflect.DeepEqual(bSnap, uSnap) {
		t.Errorf("entity snapshots differ:\nbatched:   %v\nunbatched: %v", bSnap, uSnap)
	}
	if bStats.Dispatch.BatchedPairs == 0 || !bStats.Dispatch.Enabled {
		t.Errorf("dispatch stats %+v: the batched run never batched", bStats.Dispatch)
	}
	if uCalls != n {
		t.Errorf("unbatched run made %d client calls, want %d (one per pair)", uCalls, n)
	}
	if bCalls >= uCalls {
		t.Errorf("batched run made %d client calls, unbatched %d — batching must be strictly cheaper", bCalls, uCalls)
	}
	t.Logf("round-trips for %d uncertain pairs: unbatched %d, batched %d (%.1fx fewer, mean batch %.1f)",
		n, uCalls, bCalls, float64(uCalls)/float64(bCalls), bStats.Dispatch.MeanBatchSize())
}

// TestDispatchRoundTrips is the CI bench-regression gate for the
// dispatcher (scripts/bench_regression.sh): at 64 concurrent
// resolvers it requires at least the BENCH_dispatch.json baseline's
// min_improvement_x fewer client round-trips per uncertain pair than
// the one-call-per-pair path. Env-gated like TestLLMCallRegression so
// ordinary `go test ./...` runs stay independent of the baseline
// file.
func TestDispatchRoundTrips(t *testing.T) {
	if os.Getenv("BENCH_REGRESSION") == "" {
		t.Skip("set BENCH_REGRESSION=1 (CI bench-regression step) to run")
	}
	data, err := os.ReadFile("../../BENCH_dispatch.json")
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var baseline struct {
		MinImprovementX float64 `json:"min_improvement_x"`
	}
	if err := json.Unmarshal(data, &baseline); err != nil {
		t.Fatalf("decode baseline: %v", err)
	}
	if baseline.MinImprovementX <= 1 {
		t.Fatal("baseline has no min_improvement_x > 1 — regenerate BENCH_dispatch.json")
	}

	const n = 64
	seed, queries := dispatchWorkload(t, n)
	client := &batchConsistentClient{}
	s := New(client, Options{DispatchPairs: 16, DispatchFlush: 50 * time.Millisecond})
	if err := s.AddBatch(seed); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, q := range queries {
		wg.Add(1)
		go func(q entity.Record) {
			defer wg.Done()
			if _, err := s.Resolve(q); err != nil {
				t.Error(err)
			}
		}(q)
	}
	wg.Wait()
	st := s.Stats()
	s.Close()

	calls := client.calls.Load()
	if st.LLMPairs != n {
		t.Fatalf("LLM pairs = %d, want %d — workload drift, regenerate BENCH_dispatch.json", st.LLMPairs, n)
	}
	improvement := float64(st.LLMPairs) / float64(calls)
	t.Logf("%d uncertain pairs in %d round-trips: %.1fx fewer calls per pair (baseline requires ≥ %.1fx; mean batch %.1f)",
		st.LLMPairs, calls, improvement, baseline.MinImprovementX, st.Dispatch.MeanBatchSize())
	if improvement < baseline.MinImprovementX {
		t.Errorf("round-trip improvement %.2fx below the %.2fx baseline — the dispatcher coalesces less than BENCH_dispatch.json records; if intentional, regenerate the JSON in this PR",
			improvement, baseline.MinImprovementX)
	}

	if out := os.Getenv("DISPATCH_COMPARISON_OUT"); out != "" {
		cmp, err := json.MarshalIndent(map[string]any{
			"workload":           fmt.Sprintf("%d concurrent resolvers, one uncertain pair each (TestDispatchRoundTrips)", n),
			"uncertain_pairs":    st.LLMPairs,
			"client_round_trips": calls,
			"improvement_x":      improvement,
			"min_improvement_x":  baseline.MinImprovementX,
			"mean_batch_size":    st.Dispatch.MeanBatchSize(),
			"batched_pairs":      st.Dispatch.BatchedPairs,
			"single_pair_calls":  st.Dispatch.SinglePairCalls,
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(cmp, '\n'), 0o644); err != nil {
			t.Errorf("write comparison artifact: %v", err)
		}
	}
}

// TestDispatchWithPersistence: batched decisions journal like any
// others — a restart replays them without LLM calls, and the batch
// totals survive in the recovered cost counters.
func TestDispatchWithPersistence(t *testing.T) {
	dir := t.TempDir()
	seed, queries := dispatchWorkload(t, 16)

	client := &batchConsistentClient{}
	s, err := Open(client, Options{DispatchPairs: 8, PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddBatch(seed); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, q := range queries {
		wg.Add(1)
		go func(q entity.Record) {
			defer wg.Done()
			if _, err := s.Resolve(q); err != nil {
				t.Error(err)
			}
		}(q)
	}
	wg.Wait()
	before := s.Stats()
	if before.BatchedPairs == 0 {
		t.Fatalf("stats %+v: no batched pairs to persist", before)
	}
	snapBefore := s.Snapshot()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	client2 := &batchConsistentClient{}
	s2, err := Open(client2, Options{DispatchPairs: 8, PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().BatchedPairs; got != before.BatchedPairs {
		t.Errorf("recovered BatchedPairs = %d, want %d", got, before.BatchedPairs)
	}
	if !reflect.DeepEqual(s2.Snapshot(), snapBefore) {
		t.Error("entity groups differ after recovery")
	}
	// Re-resolving is served from the durable journal: no client call,
	// no dispatcher involvement.
	res, err := s2.Resolve(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) == 0 {
		t.Error("replay produced no decisions")
	}
	for _, d := range res.Decisions {
		if !d.Journaled {
			t.Errorf("decision %+v not journaled on replay", d)
		}
	}
	if client2.calls.Load() != 0 {
		t.Errorf("recovery made %d client calls, want 0", client2.calls.Load())
	}
}

// TestInMemoryCloseDrainsDispatcher: Close on an in-memory store is
// no longer a pure no-op — it drains the dispatcher, and later
// resolves that need the LLM fail cleanly instead of hanging.
func TestInMemoryCloseDrainsDispatcher(t *testing.T) {
	seed, queries := dispatchWorkload(t, 2)
	s := New(&batchConsistentClient{}, Options{DispatchPairs: 8, DispatchFlush: time.Millisecond})
	if err := s.AddBatch(seed); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resolve(queries[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := s.Resolve(queries[1]); err == nil {
		t.Error("Resolve after Close should fail (dispatcher closed)")
	}
}
