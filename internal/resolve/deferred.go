package resolve

import (
	"context"
	"sync"
	"time"

	"llm4em/internal/core"
	"llm4em/internal/cost"
	"llm4em/internal/entity"
	"llm4em/internal/persist"
	"llm4em/internal/prompt"
	"llm4em/internal/resilience"
	"llm4em/internal/telemetry"
)

// Graceful degradation of the cascade's LLM tier. When the backend is
// unavailable — circuit breaker open, per-resolve deadline spent, or
// retries exhausted on a transient error — Resolve does not fail:
// every uncertain pair the LLM could not answer gets the local
// scorer's tentative verdict (probability against 0.5), marked
// PairDecision.Deferred, and is queued for background re-escalation.
// A deferred match is NOT folded into the entity graph (union-find
// merges cannot be undone); the union happens when the re-escalator
// obtains the real LLM verdict, so the final groups and journal
// converge to exactly what an uninterrupted run would have produced.
//
// Persistent stores journal deferred decisions like any other
// (DecisionEntry.Deferred) and journal each re-decision as an
// EntryRedecide, so the deferred queue survives restarts: replay
// rebuilds it from deferred journal entries not yet re-decided, and
// snapshots carry the queued query records (Snapshot.Deferred).
//
// Re-escalation sends each pair through the per-pair match prompt —
// identical to the healthy path under prompt.StrategyMatch, which is
// what makes the convergence byte-identical there. Under the grouped
// compare/select strategies or the reason tier a deferred pair
// re-escalates alone, so it converges to the pairwise verdict instead
// of the grouped one.

// DefaultRetryInterval is how often the background re-escalator
// checks the deferred queue when no enqueue has woken it.
const DefaultRetryInterval = 200 * time.Millisecond

// ResilienceOptions wires the fault-tolerance layer into a store.
type ResilienceOptions struct {
	// Enabled turns the layer on: the LLM client is wrapped in a
	// circuit breaker, escalations pass through the load shedder, and
	// unavailable-backend escalations degrade to deferred local
	// verdicts instead of failing the Resolve.
	Enabled bool
	// Breaker tunes the per-backend circuit breaker (zero value
	// selects the resilience package defaults).
	Breaker resilience.BreakerOptions
	// Shed tunes the escalation load shedder (zero value selects the
	// resilience package defaults). Shed rejections surface as
	// resilience.ErrShed — the caller's signal to return 503 — and do
	// NOT degrade: the backend is healthy, the server is just full.
	Shed resilience.ShedOptions
	// RetryInterval is the background re-escalator's poll cadence
	// (default DefaultRetryInterval). Enqueues wake it immediately
	// when the breaker is closed.
	RetryInterval time.Duration
	// Hedge launches a second identical LLM request when the first is
	// slower than this; the first response wins (see
	// pipeline.Options.Hedge). Zero disables hedging.
	Hedge time.Duration
}

func (o ResilienceOptions) withDefaults() ResilienceOptions {
	if o.RetryInterval <= 0 {
		o.RetryInterval = DefaultRetryInterval
	}
	return o
}

// deferredPair is one queued pair awaiting re-escalation. The full
// query record rides along because re-escalation must rebuild the
// pair's prompt after the Resolve call (and possibly the process)
// that deferred it is gone.
type deferredPair struct {
	query       entity.Record
	candidateID string
	blockScore  float64
	probability float64
}

// resilienceState is the store-side of the fault-tolerance layer:
// breaker and shedder handles, the deferred queue, and the background
// re-escalator's lifecycle. The queue mutex mu is a leaf lock — held
// only around queue reads and writes, never while taking another
// store lock.
type resilienceState struct {
	breaker *resilience.Breaker
	shed    *resilience.Shedder
	met     telemetry.ResilienceMetrics
	retry   time.Duration
	spec    prompt.Spec

	mu     sync.Mutex
	queue  []deferredPair
	queued map[pairID]bool

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
	// ctx is cancelled together with stop; re-escalation LLM calls run
	// under it so a hung backend never blocks Close.
	ctx       context.Context
	cancel    context.CancelFunc
	started   bool
	startOnce sync.Once
	stopOnce  sync.Once
}

func newResilienceState(o ResilienceOptions, spec prompt.Spec, met telemetry.ResilienceMetrics) *resilienceState {
	o = o.withDefaults()
	o.Breaker.Metrics = met
	o.Shed.Metrics = met
	ctx, cancel := context.WithCancel(context.Background())
	return &resilienceState{
		breaker: resilience.NewBreaker(o.Breaker),
		shed:    resilience.NewShedder(o.Shed),
		met:     met,
		retry:   o.RetryInterval,
		spec:    spec,
		queued:  map[pairID]bool{},
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		ctx:     ctx,
		cancel:  cancel,
	}
}

// enqueue adds a pair to the deferred queue unless it is already
// queued, and wakes the re-escalator.
func (rs *resilienceState) enqueue(dp deferredPair) {
	key := pairID{query: dp.query.ID, candidate: dp.candidateID}
	rs.mu.Lock()
	if rs.queued[key] {
		rs.mu.Unlock()
		return
	}
	rs.queued[key] = true
	rs.queue = append(rs.queue, dp)
	depth := len(rs.queue)
	rs.mu.Unlock()
	rs.met.DeferredDepth.Set(int64(depth))
	select {
	case rs.wake <- struct{}{}:
	default:
	}
}

// remove drops a pair from the queue after its re-decision committed
// (or it became undecidable). Removal after commit means a snapshot
// cut mid-redecide can hold a queue entry whose journal decision is
// already final; replay skips those (see installSnapshot).
func (rs *resilienceState) remove(key pairID) {
	rs.mu.Lock()
	for i, dp := range rs.queue {
		if dp.query.ID == key.query && dp.candidateID == key.candidate {
			rs.queue = append(rs.queue[:i], rs.queue[i+1:]...)
			break
		}
	}
	delete(rs.queued, key)
	depth := len(rs.queue)
	rs.mu.Unlock()
	rs.met.DeferredDepth.Set(int64(depth))
}

// head returns the oldest queued pair, if any.
func (rs *resilienceState) head() (deferredPair, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if len(rs.queue) == 0 {
		return deferredPair{}, false
	}
	return rs.queue[0], true
}

// depth returns the current queue length.
func (rs *resilienceState) depth() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.queue)
}

// startResilience launches the background re-escalator. New calls it
// for in-memory stores; Open calls it only after WAL replay has
// rebuilt the queue, so the drain never races recovery's lock-free
// state building.
func (s *Store) startResilience() {
	if s.res == nil {
		return
	}
	s.res.startOnce.Do(func() {
		s.res.started = true
		go s.reescalate()
	})
}

// stopResilience shuts the re-escalator down and waits for it.
func (s *Store) stopResilience() {
	if s.res == nil {
		return
	}
	s.res.stopOnce.Do(func() {
		close(s.res.stop)
		s.res.cancel()
	})
	if s.res.started {
		<-s.res.done
	}
}

// degrade resolves every pair the LLM pass left undecided to its
// tentative local verdict and queues it for re-escalation. Undecided
// pairs are exactly those with an empty Method: the local tiers and
// the budget stamp theirs during planning, and a failed escalation
// fills none (a failed reason tier leaves the first pass's decisions
// standing, so there is nothing to degrade).
func (s *Store) degrade(q entity.Record, plan *cascadePlan) {
	for _, di := range plan.llm {
		d := &plan.decisions[di]
		if d.Method != "" {
			continue
		}
		d.Match = d.Probability > 0.5
		d.Method = MethodDeferred
		d.Deferred = true
		plan.report.DeferredPairs++
		s.res.met.DeferredPairs.Inc()
		s.res.enqueue(deferredPair{
			query:       q,
			candidateID: d.CandidateID,
			blockScore:  d.BlockScore,
			probability: d.Probability,
		})
	}
}

// reescalate is the background drain loop: whenever the breaker is
// not open it re-sends queued pairs to the LLM, oldest first, and
// commits each healthy-path verdict. Runs until Close.
func (s *Store) reescalate() {
	defer close(s.res.done)
	t := time.NewTicker(s.res.retry)
	defer t.Stop()
	for {
		select {
		case <-s.res.stop:
			return
		case <-t.C:
		case <-s.res.wake:
		}
		s.drainDeferred()
	}
}

// drainDeferred re-decides queued pairs until the queue is empty, the
// backend fails again, or the store shuts down.
func (s *Store) drainDeferred() {
	for {
		select {
		case <-s.res.stop:
			return
		default:
		}
		if s.res.breaker.State() == resilience.Open {
			return
		}
		dp, ok := s.res.head()
		if !ok {
			return
		}
		if !s.redecide(dp) {
			return // backend still failing; retry next tick
		}
	}
}

// redecide sends one deferred pair through the healthy escalation
// path and commits the verdict: WAL (EntryRedecide), journal
// overwrite, entity-graph union, totals. Returns false when the LLM
// call or the commit failed and the pair should stay queued.
func (s *Store) redecide(dp deferredPair) bool {
	key := pairID{query: dp.query.ID, candidate: dp.candidateID}
	cand, ok := s.Record(dp.candidateID)
	if !ok {
		// The candidate left the store (records are never deleted
		// today, so this is future-proofing): drop the entry rather
		// than retrying forever.
		s.res.remove(key)
		return true
	}
	pair := entity.Pair{ID: dp.query.ID + "|" + dp.candidateID, A: dp.query, B: cand}
	resp, _, err := s.eng.CompleteContext(s.res.ctx, s.res.spec.Build(pair))
	if err != nil {
		return false
	}
	de := persist.DecisionEntry{
		CandidateID: dp.candidateID,
		BlockScore:  dp.blockScore,
		Probability: dp.probability,
		Match:       core.ParseAnswer(resp.Content),
		Method:      string(MethodLLM),
		Answer:      resp.Content,
	}
	cents := 0.0
	if s.priced {
		cents = cost.PerPromptCents(s.pricing,
			float64(resp.PromptTokens), float64(resp.CompletionTokens))
	}

	if s.wal != nil {
		s.persistMu.Lock()
		if s.pstate.closed {
			s.persistMu.Unlock()
			return false
		}
		err := s.appendRedecideLocked(persist.RedecideEntry{
			QueryID:          dp.query.ID,
			Decision:         de,
			PromptTokens:     resp.PromptTokens,
			CompletionTokens: resp.CompletionTokens,
			Cents:            cents,
		})
		s.persistMu.Unlock()
		if err != nil {
			return false
		}
	}
	if de.Match {
		s.graphMu.Lock()
		s.graph.Add(dp.query.ID)
		s.graph.Add(dp.candidateID)
		s.graph.Union(dp.query.ID, dp.candidateID)
		s.graphMu.Unlock()
	}
	s.statsMu.Lock()
	s.totals.redecided++
	s.totals.promptTokens += uint64(resp.PromptTokens)
	s.totals.completionTokens += uint64(resp.CompletionTokens)
	s.totals.cents += cents
	s.statsMu.Unlock()
	s.res.met.Redecided.Inc()
	s.res.remove(key)
	return true
}

// Degraded names the store's degraded condition for readiness
// reporting: "llm_breaker_open" while the circuit breaker is open
// (local resolution still serves, LLM verdicts are deferred), ""
// when healthy or when the resilience layer is disabled.
func (s *Store) Degraded() string {
	if s.res != nil && s.res.breaker.State() == resilience.Open {
		return "llm_breaker_open"
	}
	return ""
}

// ResilienceStats snapshots the fault-tolerance layer of a store.
type ResilienceStats struct {
	// Enabled reports whether the layer is on; every other field is
	// zero when it is not.
	Enabled bool
	// BreakerState is the circuit breaker's current state ("closed",
	// "half-open", "open"); BreakerTrips counts closed→open
	// transitions.
	BreakerState string
	BreakerTrips uint64
	// Shed counts escalations rejected by the load shedder; InFlight
	// and Waiting are its current occupancy.
	Shed     uint64
	InFlight int
	Waiting  int
	// DeferredQueue is the number of pairs currently awaiting
	// re-escalation; DeferredPairs and Redecided are the lifetime
	// deferred and re-decided totals.
	DeferredQueue int
	DeferredPairs uint64
	Redecided     uint64
}
