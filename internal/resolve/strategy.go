package resolve

import (
	"context"
	"time"

	"llm4em/internal/core"
	"llm4em/internal/cost"
	"llm4em/internal/dispatch"
	"llm4em/internal/entity"
	"llm4em/internal/pipeline"
	"llm4em/internal/prompt"
)

// escalator runs the strategy tier of the cascade: the first LLM pass
// over a query's uncertain pairs under the configured Strategy
// (pairwise match, grouped compare, grouped select) and the optional
// reason-tier second pass. It is shared between the serving path
// (Store.escalate, dispatcher-backed) and offline evaluation
// (EvaluateGroups, engine-direct).
type escalator struct {
	eng     *pipeline.Engine
	disp    *dispatch.Dispatcher
	opts    CascadeOptions
	spec    prompt.Spec
	domain  entity.Domain
	pricing cost.Pricing
	priced  bool
}

// run decides the planned uncertain pairs and fills their decisions
// and the report's LLM and per-strategy accounting. Every pair in
// pairs shares the same query record (pair.A) — Resolve escalates one
// query's band at a time — which is what lets compare/select answer
// the whole slice with a single grouped prompt. The returned duration
// sums the model-side latency of the answers. The context bounds every
// LLM round-trip of the pass (including fallbacks and the reason
// tier); callers without a deadline pass context.Background().
func (e *escalator) run(ctx context.Context, pairs []entity.Pair, plan *cascadePlan) (time.Duration, error) {
	var modelLat time.Duration
	var err error
	switch e.opts.strategy() {
	case prompt.StrategyCompare, prompt.StrategySelect:
		modelLat, err = e.runGrouped(ctx, pairs, plan)
	default:
		modelLat, err = e.runMatch(ctx, pairs, plan)
	}
	if err != nil {
		return 0, err
	}
	if e.opts.ReasonTier {
		reasonLat, err := e.runReason(ctx, pairs, plan)
		if err != nil {
			return 0, err
		}
		modelLat += reasonLat
	}
	return modelLat, nil
}

// accountUsage folds one answer's token usage into the report totals
// and the given strategy's share.
func (e *escalator) accountUsage(plan *cascadePlan, u *StrategyUsage, promptTokens, completionTokens int) {
	plan.report.PromptTokens += promptTokens
	plan.report.CompletionTokens += completionTokens
	u.Pairs++
	u.PromptTokens += promptTokens
	u.CompletionTokens += completionTokens
	if e.priced {
		plan.report.Cents += cost.PerPromptCents(e.pricing,
			float64(promptTokens), float64(completionTokens))
	}
}

// runMatch is the pairwise first pass: each uncertain pair is its own
// prompt, coalesced into cross-request batches when the dispatcher is
// enabled.
func (e *escalator) runMatch(ctx context.Context, pairs []entity.Pair, plan *cascadePlan) (time.Duration, error) {
	var modelLat time.Duration
	if e.disp != nil {
		results, err := e.disp.DoAllContext(ctx, pairs)
		if err != nil {
			return 0, err
		}
		batchesSeen := map[uint64]bool{}
		callBatches := map[uint64]bool{}
		for i, r := range results {
			d := &plan.decisions[plan.llm[i]]
			d.Match = r.Match
			d.Method = MethodLLM
			d.Answer = r.Answer
			d.Cached = r.Cached
			d.Batched = r.Batched
			plan.report.LLMPairs++
			if r.Cached {
				plan.report.CacheHits++
			}
			if r.Batched {
				plan.report.BatchedPairs++
				if !batchesSeen[r.BatchID] {
					batchesSeen[r.BatchID] = true
					plan.report.Batches++
				}
			}
			if r.FellBack {
				plan.report.BatchFallbacks++
			}
			switch {
			case r.Cached:
			case r.Batched:
				if !callBatches[r.BatchID] {
					callBatches[r.BatchID] = true
					plan.report.MatchUsage.Calls++
				}
			default:
				plan.report.MatchUsage.Calls++
			}
			modelLat += r.Usage.Latency
			e.accountUsage(plan, &plan.report.MatchUsage, r.Usage.PromptTokens, r.Usage.CompletionTokens)
		}
		return modelLat, nil
	}

	decided, err := e.eng.MatchContext(ctx, pairs, e.spec.Build, core.ParseAnswer)
	if err != nil {
		return 0, err
	}
	for i, pd := range decided {
		d := &plan.decisions[plan.llm[i]]
		d.Match = pd.Match
		d.Method = MethodLLM
		d.Answer = pd.Answer
		d.Cached = pd.Cached
		plan.report.LLMPairs++
		if pd.Cached {
			plan.report.CacheHits++
		} else {
			plan.report.MatchUsage.Calls++
		}
		modelLat += pd.Usage.Latency
		e.accountUsage(plan, &plan.report.MatchUsage, pd.Usage.PromptTokens, pd.Usage.CompletionTokens)
	}
	return modelLat, nil
}

// groupSpec renders the configured grouped formulation over a query's
// pairs and parses its verdicts strictly.
func (e *escalator) groupSpec() (dispatch.GroupSpec, Method) {
	records := func(ps []entity.Pair) []entity.Record {
		rs := make([]entity.Record, len(ps))
		for i, p := range ps {
			rs[i] = p.B
		}
		return rs
	}
	if e.opts.strategy() == prompt.StrategySelect {
		return dispatch.GroupSpec{
			Build: func(ps []entity.Pair) string {
				return prompt.BuildSelect(e.domain, ps[0].A, records(ps))
			},
			Parse: func(answer string, n int) ([]bool, bool) {
				chosen, ok := core.ParseSelectAnswer(answer, n)
				if !ok {
					return nil, false
				}
				verdicts := make([]bool, n)
				if chosen > 0 {
					verdicts[chosen-1] = true
				}
				return verdicts, true
			},
		}, MethodSelect
	}
	return dispatch.GroupSpec{
		Build: func(ps []entity.Pair) string {
			return prompt.BuildCompare(e.domain, ps[0].A, records(ps))
		},
		Parse: core.ParseCompareAnswers,
	}, MethodCompare
}

// runGrouped is the compare/select first pass: one grouped prompt
// answers the query's whole uncertain band, degrading to per-pair
// pairwise prompts (MethodLLM, MatchUsage) when the grouped reply
// fails strict parsing.
func (e *escalator) runGrouped(ctx context.Context, pairs []entity.Pair, plan *cascadePlan) (time.Duration, error) {
	gspec, method := e.groupSpec()
	usage := &plan.report.CompareUsage
	if method == MethodSelect {
		usage = &plan.report.SelectUsage
	}

	var results []dispatch.Result
	var err error
	if e.disp != nil {
		results, err = e.disp.DoGroupContext(ctx, pairs, gspec)
	} else {
		results, err = dispatch.RunGroupContext(ctx, e.eng, e.spec.Build, pairs, gspec)
	}
	if err != nil {
		return 0, err
	}

	var modelLat time.Duration
	freshGroup := false
	for i, r := range results {
		d := &plan.decisions[plan.llm[i]]
		d.Match = r.Match
		d.Answer = r.Answer
		d.Cached = r.Cached
		plan.report.LLMPairs++
		if r.Cached {
			plan.report.CacheHits++
		}
		switch {
		case r.FellBack:
			// The grouped reply was malformed; an individual pairwise
			// prompt decided this pair.
			d.Method = MethodLLM
			plan.report.GroupFallbacks++
			if !r.Cached {
				plan.report.MatchUsage.Calls++
			}
			e.accountUsage(plan, &plan.report.MatchUsage, r.Usage.PromptTokens, r.Usage.CompletionTokens)
		default:
			d.Method = method
			if r.Grouped && !r.Cached {
				freshGroup = true
			}
			e.accountUsage(plan, usage, r.Usage.PromptTokens, r.Usage.CompletionTokens)
		}
		modelLat += r.Usage.Latency
	}
	if freshGroup {
		usage.Calls++
	}
	return modelLat, nil
}

// runReason is the reason tier: pairs whose first-pass LLM verdict
// disagrees with the local scorer's probability — the least settled
// outcomes of the pass — are re-decided by a structured multi-step
// reasoning prompt whose verdict replaces the first-pass decision.
func (e *escalator) runReason(ctx context.Context, pairs []entity.Pair, plan *cascadePlan) (time.Duration, error) {
	var conflicted []int
	for i := range pairs {
		d := plan.decisions[plan.llm[i]]
		if (d.Probability > 0.5) != d.Match {
			conflicted = append(conflicted, i)
		}
	}
	if len(conflicted) == 0 {
		return 0, nil
	}

	rpairs := make([]entity.Pair, len(conflicted))
	for j, i := range conflicted {
		rpairs[j] = pairs[i]
	}
	parse := func(answer string) bool {
		if m, ok := core.ParseReasonAnswer(answer); ok {
			return m
		}
		// No "Final Answer:" line — fall back to the word-level parse
		// over the free-form reply.
		return core.ParseAnswer(answer)
	}
	decided, err := e.eng.MatchContext(ctx, rpairs, func(p entity.Pair) string {
		return prompt.BuildReason(e.domain, p)
	}, parse)
	if err != nil {
		return 0, err
	}

	var modelLat time.Duration
	for j, pd := range decided {
		d := &plan.decisions[plan.llm[conflicted[j]]]
		d.Match = pd.Match
		d.Method = MethodReason
		d.Answer = pd.Answer
		d.Cached = pd.Cached
		if pd.Cached {
			plan.report.CacheHits++
		} else {
			plan.report.ReasonUsage.Calls++
		}
		modelLat += pd.Usage.Latency
		e.accountUsage(plan, &plan.report.ReasonUsage, pd.Usage.PromptTokens, pd.Usage.CompletionTokens)
	}
	return modelLat, nil
}
