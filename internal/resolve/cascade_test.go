package resolve

import (
	"errors"
	"reflect"
	"testing"

	"llm4em/internal/entity"
	"llm4em/internal/features"
)

func TestCascadeOptionEdges(t *testing.T) {
	var o CascadeOptions
	if o.acceptAbove() != DefaultAcceptAbove || o.rejectBelow() != DefaultRejectBelow {
		t.Errorf("zero options: accept %v reject %v", o.acceptAbove(), o.rejectBelow())
	}
	o = CascadeOptions{AcceptAbove: -1, RejectBelow: -1}
	if o.acceptAbove() <= 1 {
		t.Errorf("negative AcceptAbove must never accept locally, got threshold %v", o.acceptAbove())
	}
	if o.rejectBelow() != 0 {
		t.Errorf("negative RejectBelow = %v, want literal 0", o.rejectBelow())
	}
	o = CascadeOptions{AcceptAbove: 0.8, RejectBelow: 0.3}
	if o.acceptAbove() != 0.8 || o.rejectBelow() != 0.3 {
		t.Errorf("explicit thresholds not honored: %v %v", o.acceptAbove(), o.rejectBelow())
	}

	custom := features.Ideal()
	custom.Bias += 1
	o = CascadeOptions{Weights: &custom}
	if got := o.weights(); !reflect.DeepEqual(got, custom) {
		t.Error("custom weights not used")
	}
	if got := (CascadeOptions{}).weights(); !reflect.DeepEqual(got, features.Ideal()) {
		t.Error("default weights are not Ideal")
	}

	if (CostReport{}).LocalFraction() != 1 {
		t.Error("empty CostReport.LocalFraction != 1")
	}
	if (Stats{}).LocalFraction() != 1 {
		t.Error("empty Stats.LocalFraction != 1")
	}
}

func TestAddBatchStopsAtError(t *testing.T) {
	// An in-batch duplicate is caught by upfront validation: the whole
	// batch is rejected before anything is inserted.
	s := New(&countingClient{}, Options{})
	err := s.AddBatch([]entity.Record{
		rec("r1", "sony camera"),
		rec("r1", "sony camera duplicate"),
		rec("r2", "never reached"),
	})
	if !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("AddBatch: %v, want ErrDuplicateID", err)
	}
	if s.Len() != 0 {
		t.Errorf("Len after in-batch duplicate = %d, want 0 (batch rejected upfront)", s.Len())
	}
	var be *BatchError
	if !errors.As(err, &be) || be.Added != 0 {
		t.Errorf("error %v, want *BatchError with Added=0", err)
	}

	// An empty ID rejects the batch the same way.
	if err := s.AddBatch([]entity.Record{rec("", "no id")}); !errors.Is(err, ErrNoID) {
		t.Errorf("empty-ID batch: %v, want ErrNoID", err)
	}
	if s.Len() != 0 {
		t.Errorf("Len after empty-ID batch = %d, want 0", s.Len())
	}

	// A duplicate against the store surfaces mid-insert: already
	// inserted records stay, and BatchError reports how many.
	if err := s.Add(rec("r1", "sony camera")); err != nil {
		t.Fatal(err)
	}
	err = s.AddBatch([]entity.Record{rec("r1", "dup against store")})
	if !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("store-dup batch: %v, want ErrDuplicateID", err)
	}
	if !errors.As(err, &be) || be.Added != 0 {
		t.Errorf("store-dup batch error %v, want *BatchError with Added=0", err)
	}
	if s.Len() != 1 {
		t.Errorf("Len after store-dup batch = %d, want 1", s.Len())
	}
}
