package resolve

import (
	"errors"
	"reflect"
	"testing"

	"llm4em/internal/entity"
	"llm4em/internal/features"
)

func TestCascadeOptionEdges(t *testing.T) {
	var o CascadeOptions
	if o.acceptAbove() != DefaultAcceptAbove || o.rejectBelow() != DefaultRejectBelow {
		t.Errorf("zero options: accept %v reject %v", o.acceptAbove(), o.rejectBelow())
	}
	o = CascadeOptions{AcceptAbove: -1, RejectBelow: -1}
	if o.acceptAbove() <= 1 {
		t.Errorf("negative AcceptAbove must never accept locally, got threshold %v", o.acceptAbove())
	}
	if o.rejectBelow() != 0 {
		t.Errorf("negative RejectBelow = %v, want literal 0", o.rejectBelow())
	}
	o = CascadeOptions{AcceptAbove: 0.8, RejectBelow: 0.3}
	if o.acceptAbove() != 0.8 || o.rejectBelow() != 0.3 {
		t.Errorf("explicit thresholds not honored: %v %v", o.acceptAbove(), o.rejectBelow())
	}

	custom := features.Ideal()
	custom.Bias += 1
	o = CascadeOptions{Weights: &custom}
	if got := o.weights(); !reflect.DeepEqual(got, custom) {
		t.Error("custom weights not used")
	}
	if got := (CascadeOptions{}).weights(); !reflect.DeepEqual(got, features.Ideal()) {
		t.Error("default weights are not Ideal")
	}

	if (CostReport{}).LocalFraction() != 1 {
		t.Error("empty CostReport.LocalFraction != 1")
	}
	if (Stats{}).LocalFraction() != 1 {
		t.Error("empty Stats.LocalFraction != 1")
	}
}

func TestAddBatchStopsAtError(t *testing.T) {
	s := New(&countingClient{}, Options{})
	err := s.AddBatch([]entity.Record{
		rec("r1", "sony camera"),
		rec("r1", "sony camera duplicate"),
		rec("r2", "never reached"),
	})
	if !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("AddBatch: %v, want ErrDuplicateID", err)
	}
	if s.Len() != 1 {
		t.Errorf("Len after failed batch = %d, want 1", s.Len())
	}
}
