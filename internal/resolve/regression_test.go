package resolve

import (
	"encoding/json"
	"os"
	"testing"
)

// TestLLMCallRegression is the CI bench-regression gate
// (scripts/bench_regression.sh): it replays the cascade reference
// workload and compares the number of candidate pairs and LLM calls
// against the baseline recorded in BENCH_resolve.json. The workload
// and the simulated models are deterministic, so any drift is a real
// behavior change: more LLM calls is a cost regression and fails;
// fewer is an improvement that should be captured by regenerating the
// JSON in the same PR.
//
// The test is env-gated so ordinary `go test ./...` runs stay fast
// and independent of the benchmark baseline file.
func TestLLMCallRegression(t *testing.T) {
	if os.Getenv("BENCH_REGRESSION") == "" {
		t.Skip("set BENCH_REGRESSION=1 (CI bench-regression step) to run")
	}
	data, err := os.ReadFile("../../BENCH_resolve.json")
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var baseline struct {
		Cascade struct {
			CandidatePairs      uint64 `json:"candidate_pairs"`
			LLMPairsWithCascade uint64 `json:"llm_pairs_with_cascade"`
		} `json:"cascade"`
	}
	if err := json.Unmarshal(data, &baseline); err != nil {
		t.Fatalf("decode baseline: %v", err)
	}
	if baseline.Cascade.CandidatePairs == 0 {
		t.Fatal("baseline has no cascade.candidate_pairs — regenerate BENCH_resolve.json")
	}

	// The reference workload of BENCH_resolve.json: 120 WDC seed
	// records queried by 120 A-side records, default cascade.
	seed, queries := wdcStoreRecords(t, 120)
	s := New(&countingClient{}, Options{CacheSize: -1})
	if err := s.AddBatch(seed); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if _, err := s.Resolve(q); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	t.Logf("workload: %d candidate pairs, %d LLM pairs (baseline %d / %d)",
		st.Candidates, st.LLMPairs, baseline.Cascade.CandidatePairs, baseline.Cascade.LLMPairsWithCascade)

	if st.Candidates != baseline.Cascade.CandidatePairs {
		t.Errorf("candidate pairs = %d, baseline %d — blocking changed; if intentional, regenerate BENCH_resolve.json in this PR",
			st.Candidates, baseline.Cascade.CandidatePairs)
	}
	if st.LLMPairs > baseline.Cascade.LLMPairsWithCascade {
		t.Errorf("LLM pairs = %d, baseline %d — the cascade now escalates more pairs (cost regression); if intentional, regenerate BENCH_resolve.json in this PR",
			st.LLMPairs, baseline.Cascade.LLMPairsWithCascade)
	} else if st.LLMPairs < baseline.Cascade.LLMPairsWithCascade {
		t.Logf("improvement: %d LLM pairs vs baseline %d — consider regenerating BENCH_resolve.json",
			st.LLMPairs, baseline.Cascade.LLMPairsWithCascade)
	}
}
