package resolve

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"llm4em/internal/entity"
	"llm4em/internal/telemetry"
)

// telCapture collects slog records emitted through a telemetry
// handle's logger.
type telCapture struct {
	mu      sync.Mutex
	records []slog.Record
}

func (h *telCapture) Enabled(context.Context, slog.Level) bool { return true }
func (h *telCapture) Handle(_ context.Context, r slog.Record) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.records = append(h.records, r)
	return nil
}
func (h *telCapture) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *telCapture) WithGroup(string) slog.Handler      { return h }

// TestResolveTelemetryCounters: the per-call instruments agree with
// the store's own lifetime totals after a mixed local/LLM workload.
func TestResolveTelemetryCounters(t *testing.T) {
	tel := telemetry.New(telemetry.Options{})
	client := &countingClient{}
	s := New(client, Options{CacheSize: -1, Telemetry: tel})

	qText, cText := midBandPair(t, 7)
	if err := s.AddBatch([]entity.Record{
		rec("r1", "sony dsc120b cybershot camera silver"),
		rec("r2", "makita impact drill kit 18v"),
		rec("r3", cText),
	}); err != nil {
		t.Fatal(err)
	}

	// One confident local resolve, one mid-band escalation.
	if _, err := s.Resolve(rec("q1", "sony dsc120b cybershot camera silver")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resolve(rec("q2", qText)); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if got := tel.ResolveTotal.Value(); got != st.Resolves {
		t.Errorf("em_resolve_total = %d, stats resolves = %d", got, st.Resolves)
	}
	if got := tel.Candidates.Value(); got != st.Candidates {
		t.Errorf("em_resolve_candidates_total = %d, stats = %d", got, st.Candidates)
	}
	if got := tel.OutcomeAccept.Value(); got != st.LocalAccepts {
		t.Errorf("outcome accept = %d, stats = %d", got, st.LocalAccepts)
	}
	if got := tel.OutcomeReject.Value(); got != st.LocalRejects {
		t.Errorf("outcome reject = %d, stats = %d", got, st.LocalRejects)
	}
	if got := tel.OutcomeLLM.Value(); got != st.LLMPairs {
		t.Errorf("outcome llm = %d, stats = %d", got, st.LLMPairs)
	}
	if tel.ResolveErrors.Value() != 0 {
		t.Errorf("resolve errors = %d, want 0", tel.ResolveErrors.Value())
	}
	if got := tel.ResolveSeconds.Count(); got != 2 {
		t.Errorf("em_resolve_seconds count = %d, want 2", got)
	}

	// Every always-on stage saw both resolves; LLM stages only the
	// escalated one.
	for _, st := range []telemetry.Stage{
		telemetry.StageExtract, telemetry.StageBlock,
		telemetry.StageJournal, telemetry.StageScore, telemetry.StageFold,
	} {
		if got := tel.Stage[st].Count(); got != 2 {
			t.Errorf("stage %s count = %d, want 2", st, got)
		}
	}
	if got := tel.Stage[telemetry.StageLLM].Count(); got != 1 {
		t.Errorf("stage llm count = %d, want 1", got)
	}
	if got := tel.Stage[telemetry.StagePersist].Count(); got != 0 {
		t.Errorf("stage persist count = %d on in-memory store, want 0", got)
	}

	// The pipeline counter saw the one escalated client call.
	if got := tel.Pipeline.Calls.Value(); got != uint64(client.calls.Load()) {
		t.Errorf("em_llm_calls_total = %d, client calls = %d", got, client.calls.Load())
	}
	// Blocking instruments tracked the index queries (one per shard
	// per resolve).
	if tel.Blocking.Queries.Value() == 0 {
		t.Error("em_blocking_queries_total stayed zero")
	}

	var b strings.Builder
	if err := tel.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"em_resolve_total 2",
		`em_resolve_stage_seconds_count{stage="block"} 2`,
		`em_cascade_outcomes_total{outcome="llm"} 1`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestResolveTelemetryPersist: a durable store records WAL append,
// fsync and snapshot activity.
func TestResolveTelemetryPersist(t *testing.T) {
	tel := telemetry.New(telemetry.Options{})
	s, err := Open(&countingClient{}, Options{
		PersistDir: t.TempDir(),
		SyncEvery:  1,
		Telemetry:  tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(rec("r1", "sony dsc120b cybershot camera silver")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resolve(rec("q1", "sony dsc120b cybershot camera silver")); err != nil {
		t.Fatal(err)
	}
	if got := tel.Persist.AppendSeconds.Count(); got != 2 { // record + resolve entry
		t.Errorf("wal append count = %d, want 2", got)
	}
	if tel.Persist.FsyncSeconds.Count() == 0 {
		t.Error("em_wal_fsync_seconds stayed zero with SyncEvery=1")
	}
	if got := tel.Stage[telemetry.StagePersist].Count(); got != 1 {
		t.Errorf("stage persist count = %d, want 1", got)
	}
	if got := tel.Stage[telemetry.StageJournal].Count(); got != 1 {
		t.Errorf("stage journal count = %d, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if tel.Persist.Snapshots.Value() == 0 || tel.Persist.SnapshotSeconds.Count() == 0 {
		t.Error("close did not record the final snapshot")
	}
	if tel.Persist.SnapshotBytes.Value() <= 0 {
		t.Errorf("snapshot bytes = %d, want > 0", tel.Persist.SnapshotBytes.Value())
	}
}

// TestResolveContextTrace: a trace attached to the context collects
// the per-stage span tree of exactly its own request.
func TestResolveContextTrace(t *testing.T) {
	s := New(&countingClient{}, Options{}) // no telemetry: trace alone activates the observer
	if err := s.Add(rec("r1", "sony dsc120b cybershot camera silver")); err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTrace("req-1")
	ctx := telemetry.WithTrace(context.Background(), tr)
	if _, err := s.ResolveContext(ctx, rec("q1", "sony dsc120b cybershot camera silver")); err != nil {
		t.Fatal(err)
	}
	durs := tr.Durations()
	var total time.Duration
	for st := 0; st < telemetry.NumStages; st++ {
		total += durs[st]
	}
	if total <= 0 {
		t.Fatalf("trace collected no spans: %v", durs)
	}
	if durs[telemetry.StageBlock] <= 0 {
		t.Errorf("block span = %v, want > 0", durs[telemetry.StageBlock])
	}
	if durs[telemetry.StageLLM] != 0 {
		t.Errorf("llm span = %v on a local decision, want 0", durs[telemetry.StageLLM])
	}

	// Without a trace and without telemetry the call still works.
	if _, err := s.ResolveContext(context.Background(), rec("q2", "sony dsc120b cybershot camera silver")); err != nil {
		t.Fatal(err)
	}
}

// TestResolveSlowLogEmission: a threshold of 1ns makes every resolve
// slow; the exemplar line carries the trace ID and stage durations.
func TestResolveSlowLogEmission(t *testing.T) {
	capture := &telCapture{}
	tel := telemetry.New(telemetry.Options{
		Logger:       slog.New(capture),
		SlowResolve:  time.Nanosecond,
		SlowLogEvery: -1,
	})
	s := New(&countingClient{}, Options{Telemetry: tel})
	if err := s.Add(rec("r1", "sony dsc120b cybershot camera silver")); err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTrace("slow-req")
	ctx := telemetry.WithTrace(context.Background(), tr)
	if _, err := s.ResolveContext(ctx, rec("q1", "sony dsc120b cybershot camera silver")); err != nil {
		t.Fatal(err)
	}
	if tel.SlowResolves.Value() != 1 {
		t.Errorf("em_slow_resolves_total = %d, want 1", tel.SlowResolves.Value())
	}
	capture.mu.Lock()
	defer capture.mu.Unlock()
	if len(capture.records) != 1 {
		t.Fatalf("slow lines = %d, want 1", len(capture.records))
	}
	recd := capture.records[0]
	attrs := map[string]slog.Value{}
	recd.Attrs(func(a slog.Attr) bool {
		attrs[a.Key] = a.Value
		return true
	})
	if got := attrs["trace_id"].String(); got != "slow-req" {
		t.Errorf("trace_id = %q, want slow-req", got)
	}
	if got := attrs["query_id"].String(); got != "q1" {
		t.Errorf("query_id = %q, want q1", got)
	}
	stages, ok := attrs["stages"]
	if !ok || len(stages.Group()) == 0 {
		t.Fatalf("slow line carries no stage spans: %v", attrs)
	}
}

// minAllocsPerRun reports the minimum over attempts AllocsPerRun
// windows. A stray allocation from a background goroutine (GC
// finalizers, the race runtime's shadow bookkeeping) occasionally
// lands inside a single window and can only ever inflate the count,
// so the minimum is the true per-op cost — one stray made the exact
// equality assertions below flaky under -race.
func minAllocsPerRun(attempts int, f func()) float64 {
	best := testing.AllocsPerRun(200, f)
	for i := 1; i < attempts; i++ {
		if a := testing.AllocsPerRun(200, f); a < best {
			best = a
		}
	}
	return best
}

// TestResolveAllocBudgetWithTelemetry pins the observability cost on
// the hot path: a resolve with full telemetry enabled allocates
// exactly as much as one without — instruments are atomics and the
// stage observer stays on the stack.
func TestResolveAllocBudgetWithTelemetry(t *testing.T) {
	build := func(tel *telemetry.Telemetry) *Store {
		s := New(benchClient{}, Options{Telemetry: tel})
		for i := 0; i < 500; i++ {
			if err := s.Add(rec(fmt.Sprintf("r%04d", i),
				fmt.Sprintf("sony camera model%04d", i))); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	measure := func(s *Store) float64 {
		q := rec("q0001", "sony camera digital model0001")
		// Warm the scratch pools before measuring.
		for i := 0; i < 10; i++ {
			if _, err := s.Resolve(q); err != nil {
				t.Fatal(err)
			}
		}
		return minAllocsPerRun(3, func() {
			if _, err := s.Resolve(q); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := measure(build(nil))
	instrumented := measure(build(telemetry.New(telemetry.Options{})))
	slack := 0.0
	if raceEnabled {
		slack = 1
	}
	if instrumented > base+slack {
		t.Errorf("telemetry added allocations: %v allocs/op with, %v without", instrumented, base)
	}
}
