package resolve

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"llm4em/internal/blocking"
	"llm4em/internal/entity"
	"llm4em/internal/features"
	"llm4em/internal/llm"
	"llm4em/internal/persist"
	"llm4em/internal/telemetry"
)

// Open returns a store resolving against the client, durably backed
// by opts.PersistDir when that field is set (with an empty
// PersistDir, Open is New). Opening an existing directory recovers
// the previous state — ingested records, entity groups, the decision
// journal and the lifetime cost totals — by loading the last snapshot
// and replaying the write-ahead log on top, without a single LLM
// call. A torn WAL tail (crash mid-append) is detected, dropped and
// truncated; replaying entries the snapshot already contains (crash
// between snapshot and log reset) is idempotent.
//
// Pairs found in the recovered decision journal short-circuit later
// Resolve calls: the durable decision is reused instead of re-running
// the cascade or re-paying the LLM.
func Open(client llm.Client, opts Options) (*Store, error) {
	// The re-escalator starts only after recovery has rebuilt the
	// deferred queue, so the drain never races replay's lock-free
	// state building.
	s := newStore(client, opts)
	dir := s.opts.PersistDir
	if dir == "" {
		s.startResilience()
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resolve: create persist dir: %w", err)
	}
	snap, ok, err := persist.ReadSnapshot(dir)
	if err != nil {
		return nil, err
	}
	if ok {
		if err := s.installSnapshot(snap); err != nil {
			return nil, err
		}
	}
	fsys := s.opts.WALFS
	if fsys == nil {
		fsys = persist.OS
	}
	wal, rec, err := persist.OpenWALFS(fsys, filepath.Join(dir, persist.WALFile))
	if err != nil {
		return nil, err
	}
	if s.opts.Telemetry != nil {
		wal.SetMetrics(s.opts.Telemetry.Persist)
	}
	if err := s.replay(rec.Entries); err != nil {
		wal.Close()
		return nil, err
	}
	s.wal = wal
	s.pstate.truncatedTail = rec.TruncatedTail
	s.startResilience()
	return s, nil
}

// persistState tracks the durability side of a store under persistMu.
type persistState struct {
	recoveredRecords   int
	recoveredDecisions int
	recoveredResolves  uint64
	truncatedTail      bool
	snapshots          uint64
	sinceSnapshot      int
	sinceSync          int
	closed             bool
	// indexEpoch is the generation of the per-shard mmap index
	// snapshots the last committed snapshot.json references (zero
	// before the first mapped checkpoint); mappedShards counts shards
	// served straight from an mmap at open, and mappedFallback reports
	// that referenced index snapshots existed but could not be mapped
	// (torn, truncated, version-mismatched or mmap-unsupported), so
	// recovery degraded to the JSON snapshot and WAL contents. On a
	// fallback, fallbackEpoch records the generation that could not be
	// read: checkpoints quarantine its files (a binary of the right
	// version may still recover them) instead of garbage-collecting
	// them with the other unreferenced epochs.
	indexEpoch     uint64
	mappedShards   int
	mappedFallback bool
	fallbackEpoch  uint64
}

// keepEpochs lists the index generations a cleanup pass must retain:
// the generation primary (normally the one the committed snapshot
// references), plus — on a store that degraded at open — the
// generation recovery could not map.
func (s *Store) keepEpochs(primary uint64) []uint64 {
	if s.pstate.mappedFallback {
		return []uint64{primary, s.pstate.fallbackEpoch}
	}
	return []uint64{primary}
}

// pairID keys the decision journal. A struct key keeps arbitrary
// caller-supplied IDs unambiguous — a string concatenation would
// collide for IDs containing the separator.
type pairID struct {
	query, candidate string
}

// installSnapshot loads a compacted state into a fresh store. Called
// before the store is shared, so field access needs no locks.
func (s *Store) installSnapshot(snap *persist.Snapshot) error {
	if snap.IndexShards > 0 {
		s.installMapped(snap)
	}
	for _, re := range snap.Records {
		r := re.Record
		if r.ID == "" {
			return fmt.Errorf("resolve: snapshot record without ID")
		}
		sh := s.shardFor(r.ID)
		text := r.Serialize()
		sh.insertLocked(r, text, s.extractFor(text))
		s.graph.Add(r.ID)
	}
	s.count.Store(int64(s.Len()))
	s.pstate.recoveredRecords = s.Len()
	for _, g := range snap.Groups {
		if len(g) == 0 {
			continue
		}
		s.graph.Add(g[0])
		for _, id := range g[1:] {
			s.graph.Union(g[0], id)
		}
	}
	for _, je := range snap.Journal {
		key := pairID{query: je.QueryID, candidate: je.CandidateID}
		je.QueryID = ""
		s.journal[key] = je
	}
	// Rebuild the deferred queue from the snapshot's carried query
	// records. A snapshot cut mid-redecide can hold a queue entry whose
	// journal decision is already final (removal happens after commit);
	// the journal check filters those.
	if s.res != nil {
		for _, de := range snap.Deferred {
			je, ok := s.journal[pairID{query: de.Query.ID, candidate: de.CandidateID}]
			if !ok || !je.Deferred {
				continue
			}
			s.res.enqueue(deferredPair{
				query:       de.Query,
				candidateID: de.CandidateID,
				blockScore:  de.BlockScore,
				probability: de.Probability,
			})
		}
	}
	s.totals = totals{
		resolves:         snap.Resolves,
		candidates:       uint64(snap.Totals.Candidates),
		localAccepts:     uint64(snap.Totals.LocalAccepts),
		localRejects:     uint64(snap.Totals.LocalRejects),
		llmPairs:         uint64(snap.Totals.LLMPairs),
		batchedPairs:     uint64(snap.Totals.BatchedPairs),
		batchFallbacks:   uint64(snap.Totals.BatchFallbacks),
		groupFallbacks:   uint64(snap.Totals.GroupFallbacks),
		budgetDecided:    uint64(snap.Totals.BudgetDecided),
		journalHits:      uint64(snap.Totals.JournalHits),
		deferredPairs:    uint64(snap.Totals.DeferredPairs),
		redecided:        snap.Redecided,
		promptTokens:     uint64(snap.Totals.PromptTokens),
		completionTokens: uint64(snap.Totals.CompletionTokens),
		cents:            snap.Totals.Cents,
		match:            strategyTotalsOf(snap.Totals.MatchStrategy),
		compare:          strategyTotalsOf(snap.Totals.CompareStrategy),
		sel:              strategyTotalsOf(snap.Totals.SelectStrategy),
		reason:           strategyTotalsOf(snap.Totals.ReasonStrategy),
	}
	s.pstate.recoveredDecisions += len(snap.Journal)
	s.pstate.recoveredResolves += snap.Resolves
	return nil
}

// installMapped adopts the per-shard EMIX index snapshots the JSON
// snapshot binds to (IndexEpoch/IndexShards): each shard's index —
// records included — is mmap'ed into place instead of replaying the
// ingest, so no record is re-serialized, re-extracted or re-indexed at
// open; extractions materialize lazily as records surface as resolve
// candidates, and the entity graph's singleton groups rebuild from a
// cheap ID walk of the maps (non-singleton groups and resolved-query
// singletons ride snap.Groups as always).
//
// Degradation is deliberate and silent at the API: a torn, truncated,
// missing or version-mismatched index file — or a directory written
// by an mmap-capable build opened on a platform without mmap — leaves
// the fresh empty shards in place and recovery continues with
// whatever the JSON snapshot and the WAL carry, while the unreadable
// generation's files are quarantined (never garbage-collected) so a
// correct binary can still recover them; a shard-count change
// re-inserts every mapped record under the new routing (a full
// rebuild, exactly the pre-mmap cost). Called before the store is
// shared, so field access needs no locks.
func (s *Store) installMapped(snap *persist.Snapshot) {
	dir := s.opts.PersistDir
	opened := make([]*blocking.Index, 0, snap.IndexShards)
	for i := 0; i < snap.IndexShards; i++ {
		ix, err := blocking.OpenMapped(filepath.Join(dir, persist.IndexFileName(snap.IndexEpoch, i)), s.opts.blockingOptions())
		if err != nil {
			for _, o := range opened {
				o.Close()
			}
			// The committed generation stays the committed generation even
			// though this build cannot read it: later checkpoints must not
			// re-use its epoch number (renaming over still-referenced
			// files would let a crash commit a mixed-generation store) and
			// must quarantine its files rather than delete state a
			// correctly-versioned binary could still recover.
			s.pstate.mappedFallback = true
			s.pstate.fallbackEpoch = snap.IndexEpoch
			s.pstate.indexEpoch = snap.IndexEpoch
			return
		}
		opened = append(opened, ix)
	}
	s.pstate.indexEpoch = snap.IndexEpoch
	if snap.IndexShards == len(s.shards) {
		var bm telemetry.BlockingMetrics
		if s.opts.Telemetry != nil {
			bm = s.opts.Telemetry.Blocking
		}
		for i, ix := range opened {
			ix.SetMetrics(bm)
			sh := s.shards[i]
			sh.ix = ix
			n := ix.Len()
			sh.ext = make([]*features.Extracted, n)
			for pos := 0; pos < n; pos++ {
				s.graph.Add(ix.RecordID(pos))
			}
			s.pstate.mappedShards++
		}
		return
	}
	for _, ix := range opened {
		for pos := 0; pos < ix.Len(); pos++ {
			r := ix.Record(pos)
			sh := s.shardFor(r.ID)
			text := r.Serialize()
			sh.insertLocked(r, text, s.extractFor(text))
			s.graph.Add(r.ID)
		}
		ix.Close()
	}
}

// replay applies WAL entries on top of the snapshot state. Duplicate
// record entries — the legitimate residue of a crash between snapshot
// rename and WAL reset — are skipped; decision replays overwrite the
// journal with identical values and re-union merged groups, both
// idempotent. No LLM call is ever issued here.
func (s *Store) replay(entries []persist.Entry) error {
	for _, e := range entries {
		switch e.Type {
		case persist.EntryRecord:
			re, err := persist.DecodeRecord(e.Payload)
			if err != nil {
				return err
			}
			r := re.Record
			sh := s.shardFor(r.ID)
			if sh.hasLocked(r.ID) {
				continue // already in the snapshot
			}
			text := r.Serialize()
			sh.insertLocked(r, text, s.extractFor(text))
			s.count.Add(1)
			s.graph.Add(r.ID)
			s.pstate.recoveredRecords++
		case persist.EntryResolve:
			rv, err := persist.DecodeResolve(e.Payload)
			if err != nil {
				return err
			}
			s.graph.Add(rv.Query.ID)
			for _, d := range rv.Decisions {
				s.journal[pairID{query: rv.Query.ID, candidate: d.CandidateID}] = d
				// Deferred matches are tentative — the union waits for the
				// EntryRedecide, exactly as on the live path.
				if d.Match && !d.Deferred {
					s.graph.Union(rv.Query.ID, d.CandidateID)
				}
				if d.Deferred && s.res != nil {
					s.res.enqueue(deferredPair{
						query:       rv.Query,
						candidateID: d.CandidateID,
						blockScore:  d.BlockScore,
						probability: d.Probability,
					})
				}
				s.pstate.recoveredDecisions++
			}
			s.applyReport(rv.Report)
			s.pstate.recoveredResolves++
		case persist.EntryRedecide:
			rd, err := persist.DecodeRedecide(e.Payload)
			if err != nil {
				return err
			}
			key := pairID{query: rd.QueryID, candidate: rd.Decision.CandidateID}
			s.journal[key] = rd.Decision
			if rd.Decision.Match {
				s.graph.Add(rd.QueryID)
				s.graph.Add(rd.Decision.CandidateID)
				s.graph.Union(rd.QueryID, rd.Decision.CandidateID)
			}
			if s.res != nil {
				s.res.remove(key)
			}
			s.totals.redecided++
			s.totals.promptTokens += uint64(rd.PromptTokens)
			s.totals.completionTokens += uint64(rd.CompletionTokens)
			s.totals.cents += rd.Cents
		default:
			// Unknown entry types are skipped so older builds can read
			// logs written by newer ones.
		}
	}
	return nil
}

// applyReport folds a replayed cost report into the lifetime totals.
func (s *Store) applyReport(r persist.ReportEntry) {
	s.totals.resolves++
	s.totals.candidates += uint64(r.Candidates)
	s.totals.localAccepts += uint64(r.LocalAccepts)
	s.totals.localRejects += uint64(r.LocalRejects)
	s.totals.llmPairs += uint64(r.LLMPairs)
	s.totals.batchedPairs += uint64(r.BatchedPairs)
	s.totals.batchFallbacks += uint64(r.BatchFallbacks)
	s.totals.groupFallbacks += uint64(r.GroupFallbacks)
	s.totals.budgetDecided += uint64(r.BudgetDecided)
	s.totals.journalHits += uint64(r.JournalHits)
	s.totals.deferredPairs += uint64(r.DeferredPairs)
	s.totals.promptTokens += uint64(r.PromptTokens)
	s.totals.completionTokens += uint64(r.CompletionTokens)
	s.totals.cents += r.Cents
	s.totals.match.add(strategyUsageOf(r.MatchStrategy))
	s.totals.compare.add(strategyUsageOf(r.CompareStrategy))
	s.totals.sel.add(strategyUsageOf(r.SelectStrategy))
	s.totals.reason.add(strategyUsageOf(r.ReasonStrategy))
}

// strategyEntryOf, strategyUsageOf and strategyTotalsOf convert
// between the journal's StrategyEntry and the in-memory per-call and
// lifetime strategy accounting.
func strategyEntryOf(u StrategyUsage) persist.StrategyEntry {
	return persist.StrategyEntry{
		Calls:            u.Calls,
		Pairs:            u.Pairs,
		PromptTokens:     u.PromptTokens,
		CompletionTokens: u.CompletionTokens,
	}
}

func strategyUsageOf(e persist.StrategyEntry) StrategyUsage {
	return StrategyUsage{
		Calls:            e.Calls,
		Pairs:            e.Pairs,
		PromptTokens:     e.PromptTokens,
		CompletionTokens: e.CompletionTokens,
	}
}

func strategyTotalsOf(e persist.StrategyEntry) StrategyTotals {
	return StrategyTotals{
		Calls:            uint64(e.Calls),
		Pairs:            uint64(e.Pairs),
		PromptTokens:     uint64(e.PromptTokens),
		CompletionTokens: uint64(e.CompletionTokens),
	}
}

func strategyEntryOfTotals(t StrategyTotals) persist.StrategyEntry {
	return persist.StrategyEntry{
		Calls:            int(t.Calls),
		Pairs:            int(t.Pairs),
		PromptTokens:     int(t.PromptTokens),
		CompletionTokens: int(t.CompletionTokens),
	}
}

// appendRecordLocked journals one ingested record. Caller holds
// persistMu.
func (s *Store) appendRecordLocked(r entity.Record) error {
	payload, err := persist.EncodeRecord(r)
	if err != nil {
		return err
	}
	if err := s.wal.Append(persist.EntryRecord, payload); err != nil {
		return err
	}
	return s.afterAppendLocked()
}

// appendResolveLocked journals one resolve call's fresh decisions and
// cost report, and installs the decisions into the in-memory journal
// — only after the WAL append succeeded, so a journal hit never
// vouches for a decision that is not on disk. Caller holds persistMu.
func (s *Store) appendResolveLocked(q entity.Record, decisions []persist.DecisionEntry, report CostReport) error {
	payload, err := persist.EncodeResolve(persist.ResolveEntry{
		Query:     q,
		Decisions: decisions,
		Report: persist.ReportEntry{
			Candidates:       report.Candidates,
			LocalAccepts:     report.LocalAccepts,
			LocalRejects:     report.LocalRejects,
			LLMPairs:         report.LLMPairs,
			BudgetDecided:    report.BudgetDecided,
			JournalHits:      report.JournalHits,
			PromptTokens:     report.PromptTokens,
			CompletionTokens: report.CompletionTokens,
			Cents:            report.Cents,
			BatchedPairs:     report.BatchedPairs,
			BatchFallbacks:   report.BatchFallbacks,
			DeferredPairs:    report.DeferredPairs,
			GroupFallbacks:   report.GroupFallbacks,
			MatchStrategy:    strategyEntryOf(report.MatchUsage),
			CompareStrategy:  strategyEntryOf(report.CompareUsage),
			SelectStrategy:   strategyEntryOf(report.SelectUsage),
			ReasonStrategy:   strategyEntryOf(report.ReasonUsage),
		},
	})
	if err != nil {
		return err
	}
	if err := s.wal.Append(persist.EntryResolve, payload); err != nil {
		return err
	}
	for _, d := range decisions {
		s.journal[pairID{query: q.ID, candidate: d.CandidateID}] = d
	}
	return s.afterAppendLocked()
}

// appendRedecideLocked journals one background re-decision and
// installs it into the in-memory journal — after the WAL append
// succeeded, like appendResolveLocked. Caller holds persistMu.
func (s *Store) appendRedecideLocked(e persist.RedecideEntry) error {
	payload, err := persist.EncodeRedecide(e)
	if err != nil {
		return err
	}
	if err := s.wal.Append(persist.EntryRedecide, payload); err != nil {
		return err
	}
	s.journal[pairID{query: e.QueryID, candidate: e.Decision.CandidateID}] = e.Decision
	return s.afterAppendLocked()
}

// afterAppendLocked runs the sync and snapshot cadences after one WAL
// append. Caller holds persistMu.
func (s *Store) afterAppendLocked() error {
	s.pstate.sinceSnapshot++
	s.pstate.sinceSync++
	if s.opts.SyncEvery > 0 && s.pstate.sinceSync >= s.opts.SyncEvery {
		if err := s.wal.Sync(); err != nil {
			return err
		}
		s.pstate.sinceSync = 0
	}
	if s.opts.SnapshotEvery > 0 && s.pstate.sinceSnapshot >= s.opts.SnapshotEvery {
		return s.checkpointLocked()
	}
	return nil
}

// checkpointLocked writes a snapshot of the full store state and
// resets the WAL. Caller holds persistMu, which blocks concurrent
// appends; any in-memory mutation not yet journaled lands in the
// snapshot and its late WAL entry replays idempotently.
//
// The ingested records normally go out as per-shard EMIX index
// snapshots (records, postings and token table in one mmap-ready
// file), written for a fresh epoch before snapshot.json commits the
// binding — the next Open then maps the shards instead of replaying
// the ingest. Each shard's file is written under its read lock, so
// Adds to that shard wait out its write. The records are inlined in
// the JSON snapshot — exactly the pre-mmap format — instead whenever
// the index files would not be authoritative: on platforms whose
// OpenMapped cannot read them back (blocking.MmapSupported is false;
// WriteSnapshot itself is plain file I/O and would succeed), or when
// any index write fails.
func (s *Store) checkpointLocked() error {
	snap := &persist.Snapshot{}
	emxOK := blocking.MmapSupported
	var epoch uint64
	if emxOK {
		// The new generation's number must be fresh against both the
		// committed binding and every file on disk: after a
		// mapped-fallback open the in-memory counter alone can lag what
		// snapshot.json references, and renaming shard files over a
		// still-referenced generation would let a crash mid-checkpoint
		// commit a mix of generations under one epoch.
		epoch = s.pstate.indexEpoch + 1
		if m := persist.MaxIndexEpoch(s.opts.PersistDir); m >= epoch {
			epoch = m + 1
		}
		for i, sh := range s.shards {
			p := filepath.Join(s.opts.PersistDir, persist.IndexFileName(epoch, i))
			sh.mu.RLock()
			err := sh.ix.WriteSnapshot(p)
			sh.mu.RUnlock()
			if err != nil {
				emxOK = false
				// Drop whatever the failed pass wrote of the new epoch
				// (the previous epoch stays — the committed snapshot
				// references it until the rename below).
				persist.RemoveIndexFiles(s.opts.PersistDir, s.keepEpochs(s.pstate.indexEpoch)...)
				break
			}
		}
	}
	if emxOK {
		snap.IndexEpoch = epoch
		snap.IndexShards = len(s.shards)
	} else {
		for _, sh := range s.shards {
			sh.mu.RLock()
			for pos := 0; pos < sh.ix.Len(); pos++ {
				snap.Records = append(snap.Records, persist.RecordEntry{Record: sh.ix.Record(pos)})
			}
			sh.mu.RUnlock()
		}
	}
	s.graphMu.Lock()
	snap.Groups = s.graph.Groups()
	s.graphMu.Unlock()
	if emxOK {
		// Singleton groups of stored records rebuild from an ID walk of
		// the mapped indexes at open — only matched groups and singleton
		// resolved queries need the JSON to carry them.
		kept := snap.Groups[:0]
		for _, g := range snap.Groups {
			if len(g) == 1 {
				sh := s.shardFor(g[0])
				sh.mu.RLock()
				stored := sh.hasLocked(g[0])
				sh.mu.RUnlock()
				if stored {
					continue
				}
			}
			kept = append(kept, g)
		}
		snap.Groups = kept
	}
	snap.Journal = make([]persist.DecisionEntry, 0, len(s.journal))
	for key, je := range s.journal {
		je.QueryID = key.query
		snap.Journal = append(snap.Journal, je)
	}
	if s.res != nil {
		s.res.mu.Lock()
		for _, dp := range s.res.queue {
			snap.Deferred = append(snap.Deferred, persist.DeferredEntry{
				Query:       dp.query,
				CandidateID: dp.candidateID,
				BlockScore:  dp.blockScore,
				Probability: dp.probability,
			})
		}
		s.res.mu.Unlock()
	}
	s.statsMu.Lock()
	t := s.totals
	s.statsMu.Unlock()
	snap.Resolves = t.resolves
	snap.Redecided = t.redecided
	snap.Totals = persist.ReportEntry{
		Candidates:       int(t.candidates),
		LocalAccepts:     int(t.localAccepts),
		LocalRejects:     int(t.localRejects),
		LLMPairs:         int(t.llmPairs),
		BudgetDecided:    int(t.budgetDecided),
		JournalHits:      int(t.journalHits),
		PromptTokens:     int(t.promptTokens),
		CompletionTokens: int(t.completionTokens),
		Cents:            t.cents,
		BatchedPairs:     int(t.batchedPairs),
		BatchFallbacks:   int(t.batchFallbacks),
		DeferredPairs:    int(t.deferredPairs),
		GroupFallbacks:   int(t.groupFallbacks),
		MatchStrategy:    strategyEntryOfTotals(t.match),
		CompareStrategy:  strategyEntryOfTotals(t.compare),
		SelectStrategy:   strategyEntryOfTotals(t.sel),
		ReasonStrategy:   strategyEntryOfTotals(t.reason),
	}
	var t0 time.Time
	if tel := s.opts.Telemetry; tel != nil && tel.Persist.SnapshotSeconds != nil {
		t0 = time.Now()
	}
	if err := persist.WriteSnapshot(s.opts.PersistDir, snap); err != nil {
		if emxOK {
			// snapshot.json still references the previous epoch — drop
			// the orphaned new files, keep the referenced generation.
			persist.RemoveIndexFiles(s.opts.PersistDir, s.keepEpochs(s.pstate.indexEpoch)...)
		}
		return err
	}
	// The rename committed: snap.IndexEpoch (or, on fallback, the
	// inline records) is now authoritative — every other index
	// generation is garbage, except a quarantined unreadable one.
	s.pstate.indexEpoch = snap.IndexEpoch
	persist.RemoveIndexFiles(s.opts.PersistDir, s.keepEpochs(snap.IndexEpoch)...)
	if err := s.wal.Reset(); err != nil {
		return err
	}
	if tel := s.opts.Telemetry; tel != nil {
		if !t0.IsZero() {
			tel.Persist.SnapshotSeconds.ObserveSince(t0)
		}
		tel.Persist.Snapshots.Inc()
		if fi, err := os.Stat(filepath.Join(s.opts.PersistDir, persist.SnapshotFile)); err == nil {
			tel.Persist.SnapshotBytes.Set(fi.Size())
		}
	}
	s.pstate.snapshots++
	s.pstate.sinceSnapshot = 0
	s.pstate.sinceSync = 0
	return nil
}

// Checkpoint forces a snapshot+compaction now, independent of the
// SnapshotEvery cadence. A no-op on in-memory stores.
func (s *Store) Checkpoint() error {
	if s.wal == nil {
		return nil
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.pstate.closed {
		return persist.ErrClosed
	}
	return s.checkpointLocked()
}

// Flush fsyncs the WAL, making every journaled mutation durable
// against OS crashes. A no-op on in-memory stores.
func (s *Store) Flush() error {
	if s.wal == nil {
		return nil
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.pstate.closed {
		return persist.ErrClosed
	}
	s.pstate.sinceSync = 0
	return s.wal.Sync()
}

// Close shuts the store down: the micro-batching dispatcher (if
// enabled) is drained — pending uncertain pairs are flushed and their
// waiting Resolve calls complete — then the WAL is flushed, finally
// snapshotted and closed. The store must not be used afterwards:
// mutations would fail with a closed-WAL or closed-dispatcher error.
// Idempotent; an in-memory store only drains the dispatcher.
func (s *Store) Close() error {
	// The re-escalator goes first: it issues LLM calls and WAL appends
	// of its own, which must not race the final snapshot. Pairs still
	// queued land in the snapshot's Deferred set and resume after the
	// next Open.
	s.stopResilience()
	if s.disp != nil {
		// Drained first so no batch is abandoned mid-flight. Callers
		// wanting the drained decisions in the final snapshot must wait
		// for their Resolve calls to return before closing — emserve
		// does, by draining the HTTP server ahead of the store.
		s.disp.Close()
	}
	if s.wal == nil {
		s.closeShards()
		return nil
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.pstate.closed {
		return nil
	}
	s.pstate.closed = true
	snapErr := s.checkpointLocked()
	closeErr := s.wal.Close()
	s.closeShards()
	if snapErr != nil {
		return snapErr
	}
	return closeErr
}

// closeShards releases the shard indexes' mmaps — a no-op per shard
// unless the store was opened from mapped index snapshots.
func (s *Store) closeShards() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.ix.Close()
		sh.mu.Unlock()
	}
}

// PersistStats snapshots the durability counters of a store.
type PersistStats struct {
	// Enabled reports whether the store is durably backed; every other
	// field is zero when it is not.
	Enabled bool
	// Dir is the persistence directory.
	Dir string
	// RecoveredRecords, RecoveredDecisions and RecoveredResolves count
	// the state rebuilt from disk when the store was opened.
	RecoveredRecords   int
	RecoveredDecisions int
	RecoveredResolves  uint64
	// TruncatedTail reports that recovery dropped a torn final WAL
	// entry — the signature of a crash mid-append.
	TruncatedTail bool
	// MappedShards counts shards served straight from an mmap'ed index
	// snapshot at open (no ingest replay); MappedFallback reports that
	// the snapshot referenced index files recovery could not map —
	// torn, truncated, wrong version or no mmap support — so the store
	// degraded to the JSON snapshot and WAL contents.
	MappedShards   int
	MappedFallback bool
	// IndexEpoch is the committed generation of the per-shard index
	// snapshots (zero before the first mapped checkpoint).
	IndexEpoch uint64
	// WALEntries and WALBytes describe appends since open; Snapshots
	// counts compactions since open.
	WALEntries uint64
	WALBytes   int64
	Snapshots  uint64
	// JournalSize is the number of durably decided pairs;
	// JournalHits counts Resolve decisions served from them (lifetime,
	// survives restarts).
	JournalSize uint64
	JournalHits uint64
}

// persistStats gathers PersistStats under persistMu.
func (s *Store) persistStats() PersistStats {
	if s.wal == nil {
		return PersistStats{}
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	s.statsMu.Lock()
	hits := s.totals.journalHits
	s.statsMu.Unlock()
	return PersistStats{
		Enabled:            true,
		Dir:                s.opts.PersistDir,
		RecoveredRecords:   s.pstate.recoveredRecords,
		RecoveredDecisions: s.pstate.recoveredDecisions,
		RecoveredResolves:  s.pstate.recoveredResolves,
		TruncatedTail:      s.pstate.truncatedTail,
		MappedShards:       s.pstate.mappedShards,
		MappedFallback:     s.pstate.mappedFallback,
		IndexEpoch:         s.pstate.indexEpoch,
		WALEntries:         s.wal.Entries(),
		WALBytes:           s.wal.Bytes(),
		Snapshots:          s.pstate.snapshots,
		JournalSize:        uint64(len(s.journal)),
		JournalHits:        hits,
	}
}
