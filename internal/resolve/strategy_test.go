package resolve

import (
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"llm4em/internal/datasets"
	"llm4em/internal/entity"
	"llm4em/internal/features"
	"llm4em/internal/llm"
	"llm4em/internal/prompt"
)

// strategyClient is a deterministic llm.Client that understands every
// prompt formulation of the strategy tier. Verdicts key on the
// "sameent<salt>" marker tokens of the test fixtures: a pair matches
// iff both sides carry the same even salt (saltAnswer), and grouped
// prompts answer each candidate consistently with the pairwise
// formulation — the contract under which a strategy changes only the
// round-trip count, never the decisions.
type strategyClient struct {
	// garbleGroups answers compare/select prompts with prose the
	// strict parsers reject, forcing the per-pair fallback.
	garbleGroups bool
	// forcePair, when non-nil, overrides every pairwise match verdict
	// — used to manufacture first-pass decisions that conflict with
	// the local probability so the reason tier triggers.
	forcePair *bool
	// reasonYes is the verdict of reason-tier prompts.
	reasonYes bool

	calls, groupCalls atomic.Int64
}

func (c *strategyClient) Name() string { return "strategy-test" }

func (c *strategyClient) Chat(messages []llm.Message) (llm.Response, error) {
	c.calls.Add(1)
	content := messages[len(messages)-1].Content
	switch {
	case strings.HasPrefix(content, prompt.CompareInstruction):
		c.groupCalls.Add(1)
		if c.garbleGroups {
			return c.hedge()
		}
		query, cands := groupSides(content)
		var b strings.Builder
		for i, cand := range cands {
			answer := "No"
			if markerMatch(query, cand) {
				answer = "Yes"
			}
			fmt.Fprintf(&b, "%d. %s\n", i+1, answer)
		}
		return llm.Response{Content: strings.TrimRight(b.String(), "\n"),
			PromptTokens: len(content) / 4, CompletionTokens: 3 * len(cands)}, nil
	case strings.HasPrefix(content, prompt.SelectInstruction):
		c.groupCalls.Add(1)
		if c.garbleGroups {
			return c.hedge()
		}
		query, cands := groupSides(content)
		for i, cand := range cands {
			if markerMatch(query, cand) {
				return llm.Response{Content: fmt.Sprintf("Answer: %d", i+1),
					PromptTokens: len(content) / 4, CompletionTokens: 3}, nil
			}
		}
		return llm.Response{Content: "Answer: none",
			PromptTokens: len(content) / 4, CompletionTokens: 3}, nil
	case strings.HasPrefix(content, prompt.ReasonInstruction):
		answer := "Final Answer: No"
		if c.reasonYes {
			answer = "Final Answer: Yes"
		}
		return llm.Response{Content: "Step 1: attributes compared.\n" + answer,
			PromptTokens: len(content) / 4, CompletionTokens: 8}, nil
	default:
		answer := "No."
		if !strings.Contains(content, "negent") && saltAnswer(saltsOf(content)) == "Yes." {
			answer = "Yes."
		}
		if c.forcePair != nil {
			answer = "No."
			if *c.forcePair {
				answer = "Yes."
			}
		}
		return llm.Response{Content: answer, PromptTokens: len(content) / 4, CompletionTokens: 2}, nil
	}
}

func (c *strategyClient) hedge() (llm.Response, error) {
	return llm.Response{Content: "The candidates are hard to distinguish from the given attributes.",
		PromptTokens: 12, CompletionTokens: 9}, nil
}

// groupSides parses the query and candidate serializations out of a
// compare/select prompt.
func groupSides(content string) (query string, cands []string) {
	for _, line := range strings.Split(content, "\n") {
		if rest, ok := strings.CutPrefix(line, "Query: '"); ok {
			query = strings.TrimSuffix(rest, "'")
		}
		if strings.HasPrefix(line, "Candidate ") {
			if i := strings.Index(line, ": '"); i >= 0 {
				cands = append(cands, strings.TrimSuffix(line[i+3:], "'"))
			}
		}
	}
	return query, cands
}

// markerMatch is the per-pair verdict rule of strategyClient: the
// sides carry the same even salt and neither is poisoned with the
// "negent" non-match marker.
func markerMatch(query, cand string) bool {
	if strings.Contains(query, "negent") || strings.Contains(cand, "negent") {
		return false
	}
	return saltAnswer(append(saltsOf(query), saltsOf(cand)...)) == "Yes."
}

// bandGroupFixture seeds a store with two candidates that both block
// to the same query inside the uncertain band — the multi-candidate
// group shape the grouped strategies exist for. The salt is even, so
// the strategy client answers Yes for both candidates pairwise and
// under compare.
func bandGroupFixture(t *testing.T, client llm.Client, opts Options) (*Store, entity.Record) {
	t.Helper()
	s := New(client, opts)
	qText, c1 := midBandPair(t, 2)
	_, c2 := midBandPair(t, 2)
	if err := s.AddBatch([]entity.Record{rec("r1", c1), rec("r2", c2+" extra")}); err != nil {
		t.Fatal(err)
	}
	return s, rec("q1", qText)
}

// TestCompareStrategyAnswersBandInOneCall pins the tentpole saving: a
// compare-strategy store answers a query's whole uncertain band with
// one grouped round-trip, marks the decisions MethodCompare, and
// accounts the call under CompareUsage.
func TestCompareStrategyAnswersBandInOneCall(t *testing.T) {
	client := &strategyClient{}
	s, q := bandGroupFixture(t, client, Options{
		Cascade: CascadeOptions{Strategy: prompt.StrategyCompare},
	})
	res, err := s.Resolve(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != 2 {
		t.Fatalf("decisions = %+v, want 2", res.Decisions)
	}
	for i, d := range res.Decisions {
		if d.Method != MethodCompare {
			t.Errorf("decision %d method = %q, want %q", i, d.Method, MethodCompare)
		}
		if !d.Match {
			t.Errorf("decision %d: even-salt pair answered No", i)
		}
	}
	if got := client.calls.Load(); got != 1 {
		t.Errorf("client calls = %d, want 1 grouped round-trip", got)
	}
	r := res.Cost
	if r.CompareUsage.Calls != 1 || r.CompareUsage.Pairs != 2 {
		t.Errorf("CompareUsage = %+v, want 1 call over 2 pairs", r.CompareUsage)
	}
	if r.MatchUsage.Calls != 0 || r.GroupFallbacks != 0 {
		t.Errorf("report %+v leaked into the match path", r)
	}
	st := s.Stats()
	if st.CompareStrategy.Calls != 1 || st.CompareStrategy.Pairs != 2 {
		t.Errorf("lifetime CompareStrategy = %+v, want the call's usage", st.CompareStrategy)
	}
}

// TestSelectStrategyPicksOneOrNone pins select semantics end to end:
// the chosen candidate is the only Match, and a "none" group leaves
// every decision a non-match.
func TestSelectStrategyPicksOneOrNone(t *testing.T) {
	client := &strategyClient{}
	s := New(client, Options{Cascade: CascadeOptions{Strategy: prompt.StrategySelect}})
	// Two candidates in the query's band; the "negent" marker makes
	// the second a non-match without changing its band shape.
	qText, c1 := midBandPair(t, 2)
	_, c2 := midBandPair(t, 2)
	if err := s.AddBatch([]entity.Record{rec("r1", c1), rec("r2", c2+" negent")}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Resolve(rec("q1", qText))
	if err != nil {
		t.Fatal(err)
	}
	matches := 0
	for _, d := range res.Decisions {
		if d.Method != MethodSelect {
			t.Errorf("decision %+v method, want %q", d, MethodSelect)
		}
		if d.Match {
			matches++
			if d.CandidateID != "r1" {
				t.Errorf("select picked %q, want r1", d.CandidateID)
			}
		}
	}
	if matches != 1 {
		t.Errorf("select produced %d matches, want exactly 1", matches)
	}
	if got := client.calls.Load(); got != 1 {
		t.Errorf("client calls = %d, want 1", got)
	}
	if res.Cost.SelectUsage.Calls != 1 || res.Cost.SelectUsage.Pairs != 2 {
		t.Errorf("SelectUsage = %+v, want 1 call over 2 pairs", res.Cost.SelectUsage)
	}

	// A query with no matching candidate: "Answer: none" leaves every
	// pair a non-match without a fallback.
	s2 := New(&strategyClient{}, Options{Cascade: CascadeOptions{Strategy: prompt.StrategySelect}})
	if err := s2.AddBatch([]entity.Record{
		rec("r1", c1+" negent"), rec("r2", c2+" negent"),
	}); err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Resolve(rec("q1", qText))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res2.Decisions {
		if d.Match || d.Method != MethodSelect {
			t.Errorf("none-group decision %+v, want a select non-match", d)
		}
	}
	if res2.Cost.GroupFallbacks != 0 {
		t.Errorf("none answer caused %d fallbacks", res2.Cost.GroupFallbacks)
	}
}

// TestGroupFallbackDegradesToPairwise pins the degradation contract at
// the store level: a malformed grouped reply re-decides every pair
// with individual pairwise prompts — same verdicts as a match-strategy
// store, MethodLLM provenance, accounted under MatchUsage and
// GroupFallbacks — and reruns are deterministic.
func TestGroupFallbackDegradesToPairwise(t *testing.T) {
	run := func() (Result, int64) {
		client := &strategyClient{garbleGroups: true}
		s, q := bandGroupFixture(t, client, Options{
			Cascade: CascadeOptions{Strategy: prompt.StrategyCompare},
		})
		res, err := s.Resolve(q)
		if err != nil {
			t.Fatal(err)
		}
		return res, client.calls.Load()
	}
	res, calls := run()
	if len(res.Decisions) != 2 {
		t.Fatalf("fallback dropped decisions: %+v", res.Decisions)
	}
	for i, d := range res.Decisions {
		if d.Method != MethodLLM {
			t.Errorf("fallback decision %d method = %q, want %q", i, d.Method, MethodLLM)
		}
		if !d.Match {
			t.Errorf("fallback decision %d flipped the pairwise verdict", i)
		}
	}
	// One wasted grouped round-trip plus one pairwise prompt per pair.
	if calls != 3 {
		t.Errorf("client calls = %d, want 3 (1 group + 2 pairwise)", calls)
	}
	r := res.Cost
	if r.GroupFallbacks != 2 || r.CompareUsage.Calls != 0 || r.MatchUsage.Pairs != 2 {
		t.Errorf("fallback accounting wrong: %+v", r)
	}

	// The same store under the match strategy decides identically —
	// the strategy changes cost, never verdicts.
	mclient := &strategyClient{}
	ms, mq := bandGroupFixture(t, mclient, Options{})
	mres, err := ms.Resolve(mq)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Decisions {
		if res.Decisions[i].Match != mres.Decisions[i].Match ||
			res.Decisions[i].CandidateID != mres.Decisions[i].CandidateID {
			t.Errorf("fallback decision %d diverges from match strategy: %+v vs %+v",
				i, res.Decisions[i], mres.Decisions[i])
		}
	}

	again, _ := run()
	if !reflect.DeepEqual(pinDecisions(res.Decisions), pinDecisions(again.Decisions)) {
		t.Error("fallback decisions differ across reruns")
	}
}

// TestReasonTierRewritesConflictedPairs pins the reason-tier trigger:
// only pairs whose first-pass verdict disagrees with the local
// probability are re-asked, and the reasoning verdict replaces the
// first pass under MethodReason.
func TestReasonTierRewritesConflictedPairs(t *testing.T) {
	qText, cText := midBandPair(t, 9)
	v, p := features.PairFeaturesText(rec("q1", qText).Serialize(), rec("r1", cText).Serialize())
	prob := features.Ideal().Probability(v, p)

	// Force the first pass to disagree with the scorer and the reason
	// tier to agree with it — the rewrite is then observable.
	conflicted := prob <= 0.5
	client := &strategyClient{forcePair: &conflicted, reasonYes: prob > 0.5}
	s := New(client, Options{Cascade: CascadeOptions{ReasonTier: true}})
	if err := s.Add(rec("r1", cText)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Resolve(rec("q1", qText))
	if err != nil {
		t.Fatal(err)
	}
	d := res.Decisions[0]
	if d.Method != MethodReason {
		t.Fatalf("conflicted pair method = %q, want %q (decision %+v)", d.Method, MethodReason, d)
	}
	if d.Match != (prob > 0.5) {
		t.Errorf("reason verdict did not replace the first pass: %+v", d)
	}
	if res.Cost.ReasonUsage.Calls != 1 || res.Cost.MatchUsage.Calls != 1 {
		t.Errorf("reason accounting %+v, want one match call and one reason call", res.Cost)
	}
	if got := client.calls.Load(); got != 2 {
		t.Errorf("client calls = %d, want 2 (first pass + reason)", got)
	}

	// An agreeing first pass leaves the decision alone: no reason call.
	agreeing := prob > 0.5
	client2 := &strategyClient{forcePair: &agreeing}
	s2 := New(client2, Options{Cascade: CascadeOptions{ReasonTier: true}})
	if err := s2.Add(rec("r1", cText)); err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Resolve(rec("q1", qText))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Decisions[0].Method != MethodLLM || res2.Cost.ReasonUsage.Calls != 0 {
		t.Errorf("agreeing pair escalated to reason tier: %+v %+v", res2.Decisions[0], res2.Cost)
	}
	if got := client2.calls.Load(); got != 1 {
		t.Errorf("client calls = %d, want 1", got)
	}
}

// TestStrategyPersistReplay pins strategy provenance across restarts:
// grouped decisions journal with their Method, and a reopened store
// replays them LLM-free.
func TestStrategyPersistReplay(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		PersistDir: dir,
		Cascade:    CascadeOptions{Strategy: prompt.StrategyCompare},
	}
	client := &strategyClient{}
	s, err := Open(client, opts)
	if err != nil {
		t.Fatal(err)
	}
	qText, c1 := midBandPair(t, 2)
	_, c2 := midBandPair(t, 2)
	if err := s.AddBatch([]entity.Record{rec("r1", c1), rec("r2", c2+" extra")}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Resolve(rec("q1", qText))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Decisions {
		if d.Method != MethodCompare {
			t.Fatalf("decision %+v, want MethodCompare", d)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	client2 := &strategyClient{}
	s2, err := Open(client2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	res2, err := s2.Resolve(rec("q1", qText))
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Decisions) != len(res.Decisions) {
		t.Fatalf("replayed resolve returned %d decisions, want %d", len(res2.Decisions), len(res.Decisions))
	}
	for i, d := range res2.Decisions {
		if !d.Journaled {
			t.Errorf("decision %d not served from the journal: %+v", i, d)
		}
		if d.Method != MethodCompare || d.Match != res.Decisions[i].Match {
			t.Errorf("journal lost strategy provenance: %+v vs %+v", d, res.Decisions[i])
		}
	}
	if got := client2.calls.Load(); got != 0 {
		t.Errorf("replayed resolve made %d LLM calls, want 0", got)
	}
	if st := s2.Stats(); st.JournalHits != 2 {
		t.Errorf("JournalHits = %d, want 2", st.JournalHits)
	}
}

// TestEvaluateGroupsStrategiesDiffer is the offline differential: on
// the same grouped fixtures under the simulated study models, every
// strategy decides every pair, grouping issues fewer client calls than
// pairwise match, and each run is deterministic.
func TestEvaluateGroupsStrategiesDiffer(t *testing.T) {
	model, err := llm.New("GPT-4")
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := datasets.GroupedPairs("wdc", "strategy-test", 24, 4)
	if err != nil {
		t.Fatal(err)
	}
	groups := GroupPairs(pairs)
	if len(groups) != 24 {
		t.Fatalf("GroupPairs regrouped %d pairs into %d groups, want 24", len(pairs), len(groups))
	}
	for _, g := range groups {
		if len(g.Candidates) != 4 || len(g.Gold) != 4 {
			t.Fatalf("group of %d candidates / %d gold, want 4", len(g.Candidates), len(g.Gold))
		}
	}

	eval := func(c CascadeOptions) GroupEvalResult {
		res, err := EvaluateGroups(model, EvalOptions{Domain: entity.Product, Cascade: c}, groups)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Outcomes) != len(pairs) {
			t.Fatalf("outcomes %d, want %d", len(res.Outcomes), len(pairs))
		}
		return res
	}
	match := eval(CascadeOptions{})
	compare := eval(CascadeOptions{Strategy: prompt.StrategyCompare})
	sel := eval(CascadeOptions{Strategy: prompt.StrategySelect})
	if match.EscalatedGroups == 0 {
		t.Fatal("no group escalated; the fixtures exercise no strategy")
	}
	if compare.ClientCalls >= match.ClientCalls || sel.ClientCalls >= match.ClientCalls {
		t.Errorf("grouping saved nothing: match %d calls, compare %d, select %d",
			match.ClientCalls, compare.ClientCalls, sel.ClientCalls)
	}
	for _, m := range compare.Outcomes {
		if m.Method == MethodSelect {
			t.Fatalf("compare run produced a select decision: %+v", m)
		}
	}

	again := eval(CascadeOptions{Strategy: prompt.StrategyCompare})
	if !reflect.DeepEqual(compare.Outcomes, again.Outcomes) || compare.Confusion != again.Confusion {
		t.Error("compare evaluation differs across reruns")
	}
}
