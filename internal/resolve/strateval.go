package resolve

import (
	"context"
	"fmt"

	"llm4em/internal/cost"
	"llm4em/internal/entity"
	"llm4em/internal/eval"
	"llm4em/internal/features"
	"llm4em/internal/llm"
	"llm4em/internal/pipeline"
	"llm4em/internal/prompt"
)

// This file is the offline entry point of the strategy tier: it runs
// labelled candidate groups — one query record against its whole
// candidate set, the shape a live Store escalates — through the same
// escalator the serving path uses, so compare/select grouping,
// fallbacks and the reason tier are measured exactly as deployed.
// EvaluatePairs (eval.go) cannot exercise the grouped strategies: it
// treats every pair as its own single-candidate plan, and a group of
// one has nothing to group.

// CandidateGroup is one query record with its labelled candidate set
// — the unit a live Resolve call escalates. Gold[i] is the gold label
// of Query versus Candidates[i].
type CandidateGroup struct {
	Query      entity.Record
	Candidates []entity.Record
	Gold       []bool
}

// GroupEvalResult aggregates one offline strategy evaluation.
type GroupEvalResult struct {
	// Outcomes holds the per-pair verdicts, groups in input order and
	// candidates in group order.
	Outcomes []PairOutcome
	// Confusion tallies decisions against gold labels.
	Confusion eval.Confusion
	// Report sums the cascade accounting over all groups, including
	// the per-strategy usage split.
	Report CostReport
	// EscalatedGroups counts groups with at least one uncertain pair —
	// the denominator for calls-per-escalated-query comparisons.
	EscalatedGroups int
	// ClientCalls is the engine's fresh client round-trip count over
	// the whole evaluation (grouped prompts count once, cache hits not
	// at all).
	ClientCalls uint64
}

// F1 returns the F1 score of the evaluation in [0, 100].
func (r GroupEvalResult) F1() float64 { return r.Confusion.F1() }

// EvaluateGroups runs labelled candidate groups through the cascade
// matcher under the configured Strategy and ReasonTier: the local
// scorer decides the confident pairs, and each group's uncertain band
// is escalated exactly as a live Resolve call would — one grouped
// compare/select prompt per group, or per-pair match prompts, plus
// the optional reason-tier second pass. Deterministic for the
// deterministic simulated models regardless of Workers.
func EvaluateGroups(client llm.Client, opts EvalOptions, groups []CandidateGroup) (GroupEvalResult, error) {
	o := opts.withDefaults()
	var res GroupEvalResult
	if len(groups) == 0 {
		return res, nil
	}
	pricing, priced := cost.For(client.Name())
	res.Report.Priced = priced

	eng := pipeline.New(client, pipeline.Options{
		Workers:    o.Workers,
		CacheSize:  o.CacheSize,
		MaxRetries: o.MaxRetries,
	})
	esc := &escalator{
		eng:     eng,
		opts:    o.Cascade,
		spec:    prompt.Spec{Design: o.Design, Domain: o.Domain},
		domain:  o.Domain,
		pricing: pricing,
		priced:  priced,
	}

	for gi, g := range groups {
		if len(g.Candidates) != len(g.Gold) {
			return GroupEvalResult{}, fmt.Errorf("resolve: evaluate groups: group %d has %d candidates but %d gold labels",
				gi, len(g.Candidates), len(g.Gold))
		}
		if len(g.Candidates) == 0 {
			continue
		}
		query := features.ExtractText(g.Query.Serialize())
		candIDs := make([]string, len(g.Candidates))
		candExts := make([]*features.Extracted, len(g.Candidates))
		blockScores := make([]float64, len(g.Candidates))
		for i, c := range g.Candidates {
			candIDs[i] = c.ID
			ext := features.ExtractText(c.Serialize())
			candExts[i] = &ext
		}
		plan := o.Cascade.plan(query, candIDs, candExts, blockScores, nil)

		if len(plan.llm) > 0 {
			pairs := make([]entity.Pair, len(plan.llm))
			for j, di := range plan.llm {
				pairs[j] = entity.Pair{
					ID:    g.Query.ID + "|" + g.Candidates[di].ID,
					A:     g.Query,
					B:     g.Candidates[di],
					Match: g.Gold[di],
				}
			}
			if _, err := esc.run(context.Background(), pairs, &plan); err != nil {
				return GroupEvalResult{}, fmt.Errorf("resolve: evaluate groups: group %d: %w", gi, err)
			}
			res.EscalatedGroups++
		}

		for i, d := range plan.decisions {
			res.Outcomes = append(res.Outcomes, PairOutcome{
				PairID:      g.Query.ID + "|" + candIDs[i],
				Gold:        g.Gold[i],
				Probability: d.Probability,
				Match:       d.Match,
				Method:      d.Method,
			})
			res.Confusion.Add(g.Gold[i], d.Match)
		}
		addReport(&res.Report, plan.report)
	}
	res.ClientCalls = eng.Stats().ClientCalls
	return res, nil
}

// addReport folds one plan's cost report into an aggregate.
func addReport(dst *CostReport, src CostReport) {
	dst.Candidates += src.Candidates
	dst.LocalAccepts += src.LocalAccepts
	dst.LocalRejects += src.LocalRejects
	dst.LLMPairs += src.LLMPairs
	dst.CacheHits += src.CacheHits
	dst.BatchedPairs += src.BatchedPairs
	dst.Batches += src.Batches
	dst.BatchFallbacks += src.BatchFallbacks
	dst.BudgetDecided += src.BudgetDecided
	dst.JournalHits += src.JournalHits
	dst.PromptTokens += src.PromptTokens
	dst.CompletionTokens += src.CompletionTokens
	dst.GroupFallbacks += src.GroupFallbacks
	addUsage(&dst.MatchUsage, src.MatchUsage)
	addUsage(&dst.CompareUsage, src.CompareUsage)
	addUsage(&dst.SelectUsage, src.SelectUsage)
	addUsage(&dst.ReasonUsage, src.ReasonUsage)
	dst.Cents += src.Cents
}

// addUsage folds one strategy usage into an aggregate.
func addUsage(dst *StrategyUsage, src StrategyUsage) {
	dst.Calls += src.Calls
	dst.Pairs += src.Pairs
	dst.PromptTokens += src.PromptTokens
	dst.CompletionTokens += src.CompletionTokens
}

// GroupPairs rebuilds labelled candidate groups from a flat pair
// list, grouping consecutive-or-not pairs by their query record
// (pair.A). Groups come out in first-appearance order with candidates
// in input order — the fixture shape the strategy ablation sweeps.
func GroupPairs(pairs []entity.Pair) []CandidateGroup {
	index := map[string]int{}
	var groups []CandidateGroup
	for _, p := range pairs {
		gi, ok := index[p.A.ID]
		if !ok {
			gi = len(groups)
			index[p.A.ID] = gi
			groups = append(groups, CandidateGroup{Query: p.A})
		}
		groups[gi].Candidates = append(groups[gi].Candidates, p.B)
		groups[gi].Gold = append(groups[gi].Gold, p.Match)
	}
	return groups
}
