package resolve

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"llm4em/internal/detrand"
	"llm4em/internal/entity"
	"llm4em/internal/tokenize"
)

// hotpathStore builds a store over randomized product-like records
// with deliberate token overlap (score ties across shards).
func hotpathStore(t *testing.T, rng *detrand.RNG, n int, opts Options) (*Store, []entity.Record) {
	t.Helper()
	pool := []string{"sony", "canon", "epson", "camera", "printer", "kit", "pro", "dock"}
	s := New(benchClient{}, opts)
	recs := make([]entity.Record, n)
	for i := range recs {
		title := fmt.Sprintf("%s %s model%03d", pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))], i%40)
		recs[i] = entity.Record{ID: fmt.Sprintf("r%04d", i), Attrs: []entity.Attr{{Name: "title", Value: title}}}
		if err := s.Add(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return s, recs
}

// decisionsKey projects the ranking-relevant parts of a result for
// comparison: candidate order, blocking scores and probabilities.
func decisionsKey(r Result) []string {
	out := make([]string, len(r.Decisions))
	for i, d := range r.Decisions {
		out[i] = fmt.Sprintf("%s|%.17g|%.17g|%v|%s", d.CandidateID, d.BlockScore, d.Probability, d.Match, d.Method)
	}
	return out
}

// TestParallelFanoutMatchesSerial is the resolve-level differential
// test: parallel shard fanout plus heap-based top-K merge must
// produce byte-identical rankings — same candidates, same order, same
// scores, including cross-shard ties — as the serial path, which the
// blocking differential test in turn pins to the old sort-based
// implementation.
func TestParallelFanoutMatchesSerial(t *testing.T) {
	rng := detrand.New("resolve-hotpath")
	serial, recs := hotpathStore(t, rng, 300, Options{FanoutRecords: -1})
	rng2 := detrand.New("resolve-hotpath")
	parallel, _ := hotpathStore(t, rng2, 300, Options{FanoutRecords: 1})

	for q := 0; q < 60; q++ {
		base := recs[rng.Intn(len(recs))]
		query := entity.Record{
			ID:    fmt.Sprintf("q%04d", q),
			Attrs: []entity.Attr{{Name: "title", Value: base.Attrs[0].Value + " extra"}},
		}
		rs, err := serial.Resolve(query)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := parallel.Resolve(query)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(decisionsKey(rs), decisionsKey(rp)) {
			t.Fatalf("query %s: serial %v != parallel %v", query.ID, decisionsKey(rs), decisionsKey(rp))
		}
		if rs.EntityID != rp.EntityID || !reflect.DeepEqual(rs.Members, rp.Members) {
			t.Fatalf("query %s: entity fold diverged: %v/%v vs %v/%v",
				query.ID, rs.EntityID, rs.Members, rp.EntityID, rp.Members)
		}
	}
}

// TestMergeMatchesSortReference pins the top-K shard merge against
// sort-then-truncate over the raw per-shard results — the exact
// global re-ranking the store used before the heap merge.
func TestMergeMatchesSortReference(t *testing.T) {
	rng := detrand.New("resolve-merge")
	s, recs := hotpathStore(t, rng, 250, Options{})
	for q := 0; q < 40; q++ {
		base := recs[rng.Intn(len(recs))]
		text := base.Serialize() + " pro"
		qid := fmt.Sprintf("m%04d", q)

		// Reference: every shard's full Query output, sorted globally
		// by (score desc, ID asc), truncated.
		type flat struct {
			id    string
			score float64
		}
		var ref []flat
		for _, sh := range s.shards {
			sh.mu.RLock()
			for _, c := range sh.ix.Query(text, s.opts.MaxCandidates, s.opts.MinScore) {
				r := sh.ix.Record(c.Pos)
				if r.ID == qid {
					continue
				}
				ref = append(ref, flat{id: r.ID, score: c.Score})
			}
			sh.mu.RUnlock()
		}
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].score != ref[j].score {
				return ref[i].score > ref[j].score
			}
			return ref[i].id < ref[j].id
		})
		if len(ref) > s.opts.MaxCandidates {
			ref = ref[:s.opts.MaxCandidates]
		}

		got := s.blockCandidates(qid, tokenize.Words(text))
		if len(got) != len(ref) {
			t.Fatalf("query %q: merge returned %d candidates, reference %d", text, len(got), len(ref))
		}
		for i := range got {
			if got[i].rec.ID != ref[i].id || got[i].score != ref[i].score {
				t.Fatalf("query %q rank %d: merge (%s, %v) != reference (%s, %v)",
					text, i, got[i].rec.ID, got[i].score, ref[i].id, ref[i].score)
			}
		}
	}
}

// TestBatchErrorUnwrap pins that BatchError keeps the typed error
// chain intact for HTTP status mapping.
func TestBatchErrorUnwrap(t *testing.T) {
	err := &BatchError{Added: 3, Err: fmt.Errorf("%w: %q", ErrDuplicateID, "x")}
	if err.Unwrap() == nil {
		t.Fatal("BatchError.Unwrap returned nil")
	}
	if got := err.Error(); got == "" {
		t.Fatal("empty BatchError message")
	}
}
