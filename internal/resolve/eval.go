package resolve

import (
	"fmt"

	"llm4em/internal/core"
	"llm4em/internal/cost"
	"llm4em/internal/entity"
	"llm4em/internal/eval"
	"llm4em/internal/features"
	"llm4em/internal/llm"
	"llm4em/internal/pipeline"
	"llm4em/internal/prompt"
)

// This file is the offline-evaluation entry point of the cascade: it
// runs labelled pairs — typically corrupted ones from the dirty-data
// harness (internal/datasets.Corruptor, internal/experiments
// robustness sweep) — through exactly the scorer-then-LLM routing a
// live Store applies to blocking candidates, and reports quality and
// cost per pair set. Blocking, the entity graph and persistence are
// deliberately out of scope: the harness measures the matcher, not
// the index.

// EvalOptions configures an offline cascade evaluation.
type EvalOptions struct {
	// Cascade tunes the thresholds, weights and budgets, exactly as on
	// a live Store.
	Cascade CascadeOptions
	// Design is the prompt design for escalated pairs (zero value
	// selects DefaultDesign, as on a Store).
	Design prompt.Design
	// Domain is the topical domain baked into escalation prompts.
	Domain entity.Domain
	// Workers, CacheSize and MaxRetries tune the pipeline engine; zero
	// values select the pipeline defaults.
	Workers    int
	CacheSize  int
	MaxRetries int
}

func (o EvalOptions) withDefaults() EvalOptions {
	if o.Design.Name == "" {
		o.Design, _ = prompt.DesignByName(DefaultDesign)
	}
	return o
}

// PairOutcome is the cascade's verdict on one labelled pair.
type PairOutcome struct {
	// PairID is the evaluated pair's ID.
	PairID string
	// Gold is the pair's gold label.
	Gold bool
	// Probability is the local scorer's calibrated match probability.
	Probability float64
	// Match is the cascade's final decision.
	Match bool
	// Method is the cascade stage that decided.
	Method Method
}

// EvalResult aggregates one offline cascade evaluation.
type EvalResult struct {
	// Outcomes holds the per-pair verdicts in input order.
	Outcomes []PairOutcome
	// Confusion tallies decisions against gold labels; its F1 is the
	// headline quality number.
	Confusion eval.Confusion
	// Report sums the cascade accounting over all pairs: local
	// accepts/rejects, LLM pairs, token usage and cents.
	Report CostReport
}

// F1 returns the F1 score of the evaluation in [0, 100].
func (r EvalResult) F1() float64 { return r.Confusion.F1() }

// EvaluatePairs runs labelled pairs through the cascade matcher: the
// local scorer decides the confident ones, the band between the
// thresholds is escalated to the client in one engine batch. The
// returned result carries per-pair outcomes, the confusion against
// the gold labels and the aggregated cost report.
//
// Evaluation is deterministic for the deterministic simulated models
// regardless of Workers, so corrupted sweeps are reproducible from
// the corruption seed alone.
func EvaluatePairs(client llm.Client, opts EvalOptions, pairs []entity.Pair) (EvalResult, error) {
	o := opts.withDefaults()
	res := EvalResult{Outcomes: make([]PairOutcome, len(pairs))}
	if len(pairs) == 0 {
		return res, nil
	}
	pricing, priced := cost.For(client.Name())
	res.Report.Priced = priced

	// Local pass: score every pair, collect the uncertain band. Each
	// pair is its own single-candidate plan, so Store semantics —
	// thresholds, hardness ordering, budgets — apply unchanged.
	var escalate []int
	for i, p := range pairs {
		ea := features.ExtractText(p.A.Serialize())
		eb := features.ExtractText(p.B.Serialize())
		plan := o.Cascade.plan(ea, []string{p.B.ID}, []*features.Extracted{&eb}, []float64{0}, nil)
		d := plan.decisions[0]
		res.Outcomes[i] = PairOutcome{
			PairID:      p.ID,
			Gold:        p.Match,
			Probability: d.Probability,
			Match:       d.Match,
			Method:      d.Method,
		}
		res.Report.Candidates++
		res.Report.LocalAccepts += plan.report.LocalAccepts
		res.Report.LocalRejects += plan.report.LocalRejects
		res.Report.BudgetDecided += plan.report.BudgetDecided
		if len(plan.llm) > 0 {
			escalate = append(escalate, i)
		}
	}

	// LLM pass: one engine batch over the whole uncertain band.
	if len(escalate) > 0 {
		eng := pipeline.New(client, pipeline.Options{
			Workers:    o.Workers,
			CacheSize:  o.CacheSize,
			MaxRetries: o.MaxRetries,
		})
		spec := prompt.Spec{Design: o.Design, Domain: o.Domain}
		batch := make([]entity.Pair, len(escalate))
		for bi, i := range escalate {
			batch[bi] = pairs[i]
		}
		decided, err := eng.Match(batch, spec.Build, core.ParseAnswer)
		if err != nil {
			return EvalResult{}, fmt.Errorf("resolve: evaluate pairs: %w", err)
		}
		for bi, d := range decided {
			out := &res.Outcomes[escalate[bi]]
			out.Match = d.Match
			out.Method = MethodLLM
			res.Report.LLMPairs++
			if d.Cached {
				res.Report.CacheHits++
			}
			res.Report.PromptTokens += d.Usage.PromptTokens
			res.Report.CompletionTokens += d.Usage.CompletionTokens
			if priced {
				res.Report.Cents += cost.PerPromptCents(pricing,
					float64(d.Usage.PromptTokens), float64(d.Usage.CompletionTokens))
			}
		}
	}

	for _, out := range res.Outcomes {
		res.Confusion.Add(out.Gold, out.Match)
	}
	return res, nil
}

// LocalProbabilities returns the local scorer's match probability for
// every pair under the given weights (nil selects features.Ideal) —
// the threshold-free half of the cascade, used by threshold
// calibration to sweep candidate thresholds without re-running any
// model.
func LocalProbabilities(ws *features.Weights, pairs []entity.Pair) []float64 {
	w := features.Ideal()
	if ws != nil {
		w = *ws
	}
	probs := make([]float64, len(pairs))
	for i, p := range pairs {
		v, pres := features.PairFeaturesText(p.A.Serialize(), p.B.Serialize())
		probs[i] = w.Probability(v, pres)
	}
	return probs
}

// LLMVerdicts answers every pair with the client directly (no local
// scorer, no thresholds) and returns the binary verdicts plus the
// summed usage. Threshold calibration uses it to price and judge the
// widest candidate band once, then sweeps thresholds arithmetically.
func LLMVerdicts(client llm.Client, opts EvalOptions, pairs []entity.Pair) ([]bool, CostReport, error) {
	o := opts.withDefaults()
	var report CostReport
	if len(pairs) == 0 {
		return nil, report, nil
	}
	pricing, priced := cost.For(client.Name())
	report.Priced = priced
	eng := pipeline.New(client, pipeline.Options{
		Workers:    o.Workers,
		CacheSize:  o.CacheSize,
		MaxRetries: o.MaxRetries,
	})
	spec := prompt.Spec{Design: o.Design, Domain: o.Domain}
	decided, err := eng.Match(pairs, spec.Build, core.ParseAnswer)
	if err != nil {
		return nil, report, fmt.Errorf("resolve: llm verdicts: %w", err)
	}
	verdicts := make([]bool, len(decided))
	for i, d := range decided {
		verdicts[i] = d.Match
		report.Candidates++
		report.LLMPairs++
		if d.Cached {
			report.CacheHits++
		}
		report.PromptTokens += d.Usage.PromptTokens
		report.CompletionTokens += d.Usage.CompletionTokens
		if priced {
			report.Cents += cost.PerPromptCents(pricing,
				float64(d.Usage.PromptTokens), float64(d.Usage.CompletionTokens))
		}
	}
	return verdicts, report, nil
}
