//go:build race

package resolve

// raceEnabled reports that the race detector is active. The alloc
// budget tests grant it one extra allocation: the race runtime's
// shadow bookkeeping intermittently surfaces in AllocsPerRun, which
// made the exact-equality assertions flaky under -race.
const raceEnabled = true
