//go:build !race

package resolve

// raceEnabled reports that the race detector is active; see
// race_on_test.go.
const raceEnabled = false
