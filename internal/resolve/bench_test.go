package resolve

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"llm4em/internal/detrand"
	"llm4em/internal/entity"
	"llm4em/internal/llm"
	"llm4em/internal/telemetry"
)

// benchClient answers instantly and deterministically, so the
// benchmark measures store overhead rather than simulated latency.
type benchClient struct{}

func (benchClient) Name() string { return "bench" }
func (benchClient) Chat(messages []llm.Message) (llm.Response, error) {
	return llm.Response{Content: "No.", PromptTokens: 80, CompletionTokens: 2}, nil
}

// benchStore seeds a store with n synthetic offers and returns query
// variants of them (same offer, slightly reworded).
func benchStore(b *testing.B, n int) (*Store, []entity.Record) {
	return benchStoreOpts(b, n, Options{})
}

func benchStoreOpts(b *testing.B, n int, opts Options) (*Store, []entity.Record) {
	b.Helper()
	brands := []string{"sony", "canon", "epson", "makita"}
	cats := []string{"camera", "printer", "drill", "laptop"}
	rng := detrand.New("resolve-bench")
	s := New(benchClient{}, opts)
	queries := make([]entity.Record, 0, n)
	for i := 0; i < n; i++ {
		brand := brands[rng.Intn(len(brands))]
		cat := cats[rng.Intn(len(cats))]
		title := fmt.Sprintf("%s %s model%04d", brand, cat, i)
		if err := s.Add(entity.Record{
			ID:    fmt.Sprintf("s%05d", i),
			Attrs: []entity.Attr{{Name: "title", Value: title}},
		}); err != nil {
			b.Fatal(err)
		}
		queries = append(queries, entity.Record{
			ID:    fmt.Sprintf("q%05d", i),
			Attrs: []entity.Attr{{Name: "title", Value: fmt.Sprintf("%s %s digital model%04d", brand, cat, i)}},
		})
	}
	return s, queries
}

// BenchmarkStoreResolve measures sequential resolve throughput
// against a 10k-record store.
func BenchmarkStoreResolve(b *testing.B) { benchmarkStoreResolve(b, 10000) }

// BenchmarkStoreResolve100k is the same workload at 100k records,
// probing how blocking scales with the collection.
func BenchmarkStoreResolve100k(b *testing.B) { benchmarkStoreResolve(b, 100000) }

// BenchmarkStoreResolveTelemetry is BenchmarkStoreResolve with the
// full telemetry subsystem enabled — stage timers, counters and
// histograms live on the hot path. The regression gate compares it
// against the same baseline as the uninstrumented benchmark, so the
// instrumentation cost must stay inside the normal slack.
func BenchmarkStoreResolveTelemetry(b *testing.B) {
	tel := telemetry.New(telemetry.Options{})
	s, queries := benchStoreOpts(b, 10000, Options{Telemetry: tel})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		q.ID = fmt.Sprintf("%s-%d", q.ID, i)
		if _, err := s.Resolve(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreResolveResilience is BenchmarkStoreResolve with the
// fault-tolerance layer enabled — breaker, shedder and deferred-queue
// checks live on the healthy hot path. The regression gate compares
// it against the same baseline as the plain benchmark, so the layer's
// cost must stay inside the normal slack.
func BenchmarkStoreResolveResilience(b *testing.B) {
	s, queries := benchStoreOpts(b, 10000, Options{
		Resilience: ResilienceOptions{Enabled: true, RetryInterval: time.Hour},
	})
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		q.ID = fmt.Sprintf("%s-%d", q.ID, i)
		if _, err := s.Resolve(q); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkStoreResolve(b *testing.B, n int) {
	s, queries := benchStore(b, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		q.ID = fmt.Sprintf("%s-%d", q.ID, i) // fresh graph node per call
		if _, err := s.Resolve(q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := s.Stats()
	if st.Candidates > 0 {
		b.ReportMetric(float64(st.LLMPairs)/float64(st.Resolves), "llm-pairs/resolve")
		b.ReportMetric(100*st.LocalFraction(), "%local")
	}
}

// BenchmarkStoreResolveParallel measures concurrent resolve
// throughput: the serving-path hot loop with per-shard read locks.
func BenchmarkStoreResolveParallel(b *testing.B) {
	s, queries := benchStore(b, 10000)
	var ctr int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := atomic.AddInt64(&ctr, 1)
			q := queries[int(n)%len(queries)]
			q.ID = fmt.Sprintf("%s-p%d", q.ID, n)
			if _, err := s.Resolve(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStoreResolveDispatch measures concurrent resolve
// throughput when every query carries one uncertain pair — the
// LLM-bound serving path — with the micro-batching dispatcher
// coalescing pairs across the concurrent resolvers. The client
// charges a small fixed latency per round-trip, modelling a hosted
// LLM; the client-calls/pair metric is the dispatcher's saving.
func BenchmarkStoreResolveDispatch(b *testing.B) { benchmarkDispatch(b, 16) }

// BenchmarkStoreResolveDispatchOff is the same workload with one
// round-trip per uncertain pair — the comparison baseline recorded in
// BENCH_dispatch.json.
func BenchmarkStoreResolveDispatchOff(b *testing.B) { benchmarkDispatch(b, 0) }

func benchmarkDispatch(b *testing.B, dispatchPairs int) {
	seed, queries := dispatchWorkload(b, 64)
	client := &batchConsistentClient{latency: 200 * time.Microsecond}
	// Caching off so escalations are not answered by a warming cache.
	// The queries wrap around as b.N grows and the dispatcher's
	// single-flight can coalesce overlapping repeats of the same pair
	// — an economy the unbatched path (no coalescing with the cache
	// off) cannot match — so the round-trip metric below divides by
	// the pairs that actually consumed a batch seat or their own
	// call, keeping the two variants comparable.
	s := New(client, Options{DispatchPairs: dispatchPairs, CacheSize: -1})
	if err := s.AddBatch(seed); err != nil {
		b.Fatal(err)
	}
	var ctr int64
	b.SetParallelism(64)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := atomic.AddInt64(&ctr, 1)
			q := queries[int(n)%len(queries)]
			q.ID = fmt.Sprintf("%s-d%d", q.ID, n)
			if _, err := s.Resolve(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	st := s.Stats()
	routed := st.LLMPairs // unbatched: every pair is its own call
	if st.Dispatch.Enabled {
		routed = st.Dispatch.BatchedPairs + st.Dispatch.SinglePairCalls + st.Dispatch.FallbackPairs
		coalesced := st.Dispatch.SingleFlightHits + st.Dispatch.CacheHits
		b.ReportMetric(float64(coalesced)/float64(st.LLMPairs), "coalesced/pair")
	}
	if routed > 0 {
		b.ReportMetric(float64(st.Engine.ClientCalls)/float64(routed), "client-calls/pair")
	}
	if st.Dispatch.Enabled && st.Dispatch.Batches > 0 {
		b.ReportMetric(st.Dispatch.MeanBatchSize(), "pairs/batch")
	}
	s.Close()
}

// BenchmarkStoreAdd measures incremental ingestion with the default
// eager feature extraction.
func BenchmarkStoreAdd(b *testing.B) { benchmarkStoreAdd(b, Options{}) }

// BenchmarkStoreAddDeferred measures the DeferExtraction batch-ingest
// mode: extraction is skipped at Add time and paid lazily (cached) the
// first time a record surfaces as a candidate.
func BenchmarkStoreAddDeferred(b *testing.B) { benchmarkStoreAdd(b, Options{DeferExtraction: true}) }

func benchmarkStoreAdd(b *testing.B, opts Options) {
	s := New(benchClient{}, opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Add(entity.Record{
			ID:    fmt.Sprintf("a%08d", i),
			Attrs: []entity.Attr{{Name: "title", Value: fmt.Sprintf("sony camera model%08d", i)}},
		}); err != nil {
			b.Fatal(err)
		}
	}
}
