package resolve

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"llm4em/internal/entity"
	"llm4em/internal/persist"
	"llm4em/internal/pipeline"
)

// mustOpen opens a persistent store over a fresh counting client.
func mustOpen(t *testing.T, dir string, opts Options) (*Store, *countingClient) {
	t.Helper()
	client := &countingClient{}
	opts.PersistDir = dir
	s, err := Open(client, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, client
}

// persistedStats strips the process-lifetime parts of Stats — engine
// counters and durability bookkeeping — leaving exactly the state
// recovery must reproduce.
func persistedStats(st Stats) Stats {
	st.Engine = pipeline.Stats{}
	st.Persist = PersistStats{}
	return st
}

// stripReplay normalizes the flags that legitimately differ between
// an original decision and its journal replay.
func stripReplay(ds []PairDecision) []PairDecision {
	out := make([]PairDecision, len(ds))
	copy(out, ds)
	for i := range out {
		out[i].Cached = false
		out[i].Journaled = false
	}
	return out
}

func TestOpenWithoutDirIsInMemory(t *testing.T) {
	client := &countingClient{}
	s, err := Open(client, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(rec("r1", "sony camera")); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Persist.Enabled {
		t.Error("in-memory store reports persistence enabled")
	}
	// The persistence API degrades to no-ops.
	if err := s.Checkpoint(); err != nil {
		t.Errorf("Checkpoint: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Errorf("Flush: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestCrashRecovery is the acceptance test of the durability layer: a
// store is killed mid-workload (abandoned without Close, so no final
// snapshot or flush runs), reopened from its directory, and must
// match both its own pre-crash state and a never-crashed in-memory
// run — without a single LLM call during recovery.
func TestCrashRecovery(t *testing.T) {
	seed, queries := wdcStoreRecords(t, 40)
	dir := t.TempDir()

	// Never-crashed control run, purely in memory.
	control := New(&countingClient{}, Options{})
	if err := control.AddBatch(seed); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if _, err := control.Resolve(q); err != nil {
			t.Fatal(err)
		}
	}

	// The crashing run: same workload, persistent.
	a, _ := mustOpen(t, dir, Options{})
	if err := a.AddBatch(seed); err != nil {
		t.Fatal(err)
	}
	results := map[string]Result{}
	for _, q := range queries {
		res, err := a.Resolve(q)
		if err != nil {
			t.Fatal(err)
		}
		results[q.ID] = res
	}
	preSnap := a.Snapshot()
	preStats := a.Stats()
	// SIGKILL equivalent: the store is abandoned here — no Close, no
	// Checkpoint, no Flush.

	b, client := mustOpen(t, dir, Options{})
	if got := client.calls.Load(); got != 0 {
		t.Fatalf("recovery made %d LLM calls, want 0", got)
	}
	if !reflect.DeepEqual(b.Snapshot(), preSnap) {
		t.Errorf("recovered snapshot differs from pre-crash:\ngot  %v\nwant %v", b.Snapshot(), preSnap)
	}
	if !reflect.DeepEqual(b.Snapshot(), control.Snapshot()) {
		t.Errorf("recovered snapshot differs from never-crashed run:\ngot  %v\nwant %v", b.Snapshot(), control.Snapshot())
	}
	if got, want := persistedStats(b.Stats()), persistedStats(preStats); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered stats differ:\ngot  %+v\nwant %+v", got, want)
	}
	ps := b.Stats().Persist
	if !ps.Enabled || ps.RecoveredRecords != len(seed) || ps.RecoveredResolves != uint64(len(queries)) {
		t.Errorf("persist stats after recovery: %+v", ps)
	}

	// Re-resolving the same queries is answered from the decision
	// journal: identical decisions and groups, zero LLM calls.
	for _, q := range queries {
		res, err := b.Resolve(q)
		if err != nil {
			t.Fatal(err)
		}
		orig := results[q.ID]
		if !reflect.DeepEqual(stripReplay(res.Decisions), stripReplay(orig.Decisions)) {
			t.Errorf("query %s: replayed decisions differ\ngot  %+v\nwant %+v",
				q.ID, res.Decisions, orig.Decisions)
		}
		// Members are not compared: the recovered graph already holds
		// every query's merges, while the original saw only the folds
		// up to its own call. The final groups are compared below.
		if res.Cost.LLMPairs != 0 || res.Cost.JournalHits != res.Cost.Candidates {
			t.Errorf("query %s: re-resolve cost %+v, want all journal hits", q.ID, res.Cost)
		}
		for _, d := range res.Decisions {
			if !d.Journaled {
				t.Errorf("query %s: pair %s not journaled on re-resolve", q.ID, d.CandidateID)
			}
		}
	}
	if got := client.calls.Load(); got != 0 {
		t.Fatalf("journaled re-resolves made %d LLM calls, want 0", got)
	}
	if !reflect.DeepEqual(b.Snapshot(), preSnap) {
		t.Error("re-resolving journaled queries changed the entity groups")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotPlusTailReplay covers recovery ordering: state must be
// snapshot first, then the WAL tail on top.
func TestSnapshotPlusTailReplay(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if err := s.AddBatch([]entity.Record{
		rec("r1", "sony dsc120b cybershot camera silver"),
		rec("r2", "makita impact drill kit 18v"),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resolve(rec("q1", "sony dsc120b cybershot camera silver")); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Tail after the snapshot: one more record and one more resolve.
	if err := s.Add(rec("r3", "epson workforce 845 printer")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resolve(rec("q2", "epson workforce 845 printer")); err != nil {
		t.Fatal(err)
	}
	preSnap := s.Snapshot()
	preStats := s.Stats()
	// Crash: no Close.

	b, client := mustOpen(t, dir, Options{})
	defer b.Close()
	if client.calls.Load() != 0 {
		t.Error("recovery made LLM calls")
	}
	if b.Len() != 3 {
		t.Errorf("recovered %d records, want 3", b.Len())
	}
	if !reflect.DeepEqual(b.Snapshot(), preSnap) {
		t.Errorf("snapshot+tail recovery:\ngot  %v\nwant %v", b.Snapshot(), preSnap)
	}
	if got, want := persistedStats(b.Stats()), persistedStats(preStats); !reflect.DeepEqual(got, want) {
		t.Errorf("stats after snapshot+tail recovery:\ngot  %+v\nwant %+v", got, want)
	}
	ps := b.Stats().Persist
	if ps.Snapshots != 0 { // snapshots counts this process's compactions
		t.Errorf("Snapshots = %d on a fresh handle", ps.Snapshots)
	}
}

// TestDuplicateRecordReplay pins the idempotency contract: a crash
// between snapshot rename and WAL reset leaves record entries in the
// log that the snapshot already contains, and replay must skip them
// silently — the ErrDuplicateID path is for callers, not recovery.
func TestDuplicateRecordReplay(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	r1 := rec("r1", "sony dsc120b cybershot camera silver")
	if err := s.AddBatch([]entity.Record{r1, rec("r2", "makita impact drill kit 18v")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil { // r1, r2 now live in the snapshot
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash window: re-append r1 to the (reset) WAL as if
	// the snapshot rename landed but the log reset did not.
	w, _, err := persist.OpenWAL(filepath.Join(dir, persist.WALFile))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := persist.EncodeRecord(r1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(persist.EntryRecord, payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	b, _ := mustOpen(t, dir, Options{})
	defer b.Close()
	if b.Len() != 2 {
		t.Fatalf("duplicate replay yielded %d records, want 2", b.Len())
	}
	if got, _ := b.Record("r1"); !reflect.DeepEqual(got, r1) {
		t.Errorf("r1 after duplicate replay = %+v", got)
	}
	// The caller-facing duplicate path is intact.
	if err := b.Add(r1); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("Add(r1) after recovery: %v, want ErrDuplicateID", err)
	}
}

// TestTruncatedTailRecovery tears the WAL mid-entry and expects
// recovery to keep everything before the tear and report it.
func TestTruncatedTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if err := s.AddBatch([]entity.Record{
		rec("r1", "sony dsc120b cybershot camera silver"),
		rec("r2", "makita impact drill kit 18v"),
	}); err != nil {
		t.Fatal(err)
	}
	// Crash, then tear the tail: half an entry header.
	f, err := os.OpenFile(filepath.Join(dir, persist.WALFile), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{byte(persist.EntryRecord), 0x42}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b, _ := mustOpen(t, dir, Options{})
	defer b.Close()
	if b.Len() != 2 {
		t.Errorf("recovered %d records, want 2", b.Len())
	}
	if ps := b.Stats().Persist; !ps.TruncatedTail {
		t.Errorf("TruncatedTail not reported: %+v", ps)
	}
}

// TestSnapshotCadence drives enough appends through a small
// SnapshotEvery to trigger automatic compaction.
func TestSnapshotCadence(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{SnapshotEvery: 3, SyncEvery: 1})
	for _, r := range []entity.Record{
		rec("r1", "sony dsc120b cybershot camera silver"),
		rec("r2", "makita impact drill kit 18v"),
		rec("r3", "epson workforce 845 printer"),
		rec("r4", "canon powershot sx620 camera black"),
	} {
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	ps := s.Stats().Persist
	if ps.Snapshots == 0 {
		t.Fatalf("no automatic snapshot after %d appends with SnapshotEvery=3: %+v", 4, ps)
	}
	if _, ok, err := persist.ReadSnapshot(dir); err != nil || !ok {
		t.Fatalf("snapshot file missing after cadence compaction: ok=%v err=%v", ok, err)
	}
	// Crash and recover: cadence snapshots alone must carry the state.
	b, _ := mustOpen(t, dir, Options{})
	defer b.Close()
	if b.Len() != 4 {
		t.Errorf("recovered %d records, want 4", b.Len())
	}
}

// TestConcurrentPersistentResolves drives a persistent store with
// parallel resolves (plus a snapshot cadence small enough to compact
// mid-flight) and expects recovery to equal a sequential in-memory
// run — the WAL commit path must be linearizable with compaction.
func TestConcurrentPersistentResolves(t *testing.T) {
	seed, queries := wdcStoreRecords(t, 40)
	dir := t.TempDir()

	control := New(&countingClient{}, Options{})
	if err := control.AddBatch(seed); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if _, err := control.Resolve(q); err != nil {
			t.Fatal(err)
		}
	}

	s, _ := mustOpen(t, dir, Options{SnapshotEvery: 16})
	if err := s.AddBatch(seed); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, len(queries))
	for _, q := range queries {
		go func(q entity.Record) {
			_, err := s.Resolve(q)
			done <- err
		}(q)
	}
	for range queries {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	preSnap := s.Snapshot()
	// Crash: no Close.

	b, client := mustOpen(t, dir, Options{})
	defer b.Close()
	if client.calls.Load() != 0 {
		t.Error("recovery made LLM calls")
	}
	if !reflect.DeepEqual(b.Snapshot(), preSnap) {
		t.Errorf("concurrent persistent recovery differs from pre-crash state")
	}
	if !reflect.DeepEqual(b.Snapshot(), control.Snapshot()) {
		t.Errorf("concurrent persistent recovery differs from sequential in-memory run")
	}
}

// TestJournalKeysWithSeparatorIDs pins that caller-supplied IDs
// containing the '|' separator survive the snapshot round trip: the
// journal is keyed structurally, so "a|b" vs "c" can never collide
// with "a" vs "b|c" and serve the wrong pair's decision.
func TestJournalKeysWithSeparatorIDs(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	title := "sony dsc120b cybershot camera silver"
	if err := s.Add(rec("r|1", title)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Resolve(rec("q|1", title))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matched() {
		t.Fatalf("pipe-ID pair did not match: %+v", res)
	}
	if err := s.Checkpoint(); err != nil { // force the snapshot round trip
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	b, _ := mustOpen(t, dir, Options{})
	defer b.Close()
	res2, err := b.Resolve(rec("q|1", title))
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Decisions) != 1 || !res2.Decisions[0].Journaled || res2.Decisions[0].CandidateID != "r|1" {
		t.Errorf("recovered journal decision = %+v, want journaled hit on r|1", res2.Decisions)
	}
	if ent, ok := b.Entity("q|1"); !ok || len(ent) != 2 {
		t.Errorf("Entity(q|1) after recovery = %v %v", ent, ok)
	}
}

// TestFlushAndClosedStore covers the explicit fsync path and the
// failure mode of mutating a store whose WAL is closed.
func TestFlushAndClosedStore(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if err := s.Add(rec("r1", "sony dsc120b cybershot camera silver")); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err == nil {
		t.Error("Flush on a closed store succeeded")
	}
	if err := s.Checkpoint(); err == nil {
		t.Error("Checkpoint on a closed store succeeded")
	}
	if _, err := s.Resolve(rec("q1", "sony dsc120b cybershot camera silver")); err == nil {
		t.Error("Resolve on a closed store succeeded")
	}
}

// TestOpenErrors covers the failure modes of opening a persistence
// directory.
func TestOpenErrors(t *testing.T) {
	// The directory path is an existing file.
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(&countingClient{}, Options{PersistDir: file}); err == nil {
		t.Error("Open over a plain file succeeded")
	}
	// A corrupt snapshot fails loudly instead of replaying garbage.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, persist.SnapshotFile), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(&countingClient{}, Options{PersistDir: dir}); err == nil {
		t.Error("Open with a corrupt snapshot succeeded")
	}
}

// TestCloseIsFinal pins clean-shutdown semantics: Close snapshots
// everything, a reopened store starts from the snapshot alone, and
// mutating a closed store fails loudly.
func TestCloseIsFinal(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if err := s.Add(rec("r1", "sony dsc120b cybershot camera silver")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resolve(rec("q1", "sony dsc120b cybershot camera silver")); err != nil {
		t.Fatal(err)
	}
	preSnap := s.Snapshot()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // second close is a no-op
		t.Errorf("second Close: %v", err)
	}
	if err := s.Add(rec("r2", "too late")); err == nil {
		t.Error("Add on a closed store succeeded")
	}

	b, _ := mustOpen(t, dir, Options{})
	defer b.Close()
	if !reflect.DeepEqual(b.Snapshot(), preSnap) {
		t.Errorf("post-close recovery differs:\ngot  %v\nwant %v", b.Snapshot(), preSnap)
	}
	if ps := b.Stats().Persist; ps.RecoveredRecords != 1 || ps.RecoveredResolves != 1 {
		t.Errorf("persist stats after clean shutdown: %+v", ps)
	}
}
