package llm4em_test

import (
	"fmt"
	"log"

	"llm4em"
)

// ExampleMatcher shows the core matching workflow: build a matcher
// from a model and a prompt design, then match a pair of entity
// descriptions.
func ExampleMatcher() {
	model, err := llm4em.NewModel(llm4em.GPT4)
	if err != nil {
		log.Fatal(err)
	}
	design, err := llm4em.DesignByName("general-complex-force")
	if err != nil {
		log.Fatal(err)
	}
	matcher := llm4em.Matcher{Client: model, Design: design, Domain: llm4em.Product}

	pair := llm4em.Pair{
		ID: "example",
		A: llm4em.Record{ID: "a", Attrs: []llm4em.Attr{
			{Name: "title", Value: "Sony Cybershot DSC-120B digital camera black"},
			{Name: "price", Value: "348.00"},
		}},
		B: llm4em.Record{ID: "b", Attrs: []llm4em.Attr{
			{Name: "title", Value: "sony dsc120b camera black"},
			{Name: "price", Value: "351.99"},
		}},
	}
	d, err := matcher.MatchPair(pair)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answer=%s match=%v\n", d.Answer, d.Match)
	// Output: answer=Yes match=true
}

// ExampleParseAnswer demonstrates the paper's answer-parsing rule:
// lower-case the reply and look for the word "yes".
func ExampleParseAnswer() {
	fmt.Println(llm4em.ParseAnswer("Yes, the two offers match."))
	fmt.Println(llm4em.ParseAnswer("It is difficult to say."))
	fmt.Println(llm4em.ParseAnswer("The eyes have it."))
	// Output:
	// true
	// false
	// false
}

// ExampleLoadDataset loads one of the six regenerated benchmarks and
// prints its Table 1 statistics.
func ExampleLoadDataset() {
	ds, err := llm4em.LoadDataset("wdc")
	if err != nil {
		log.Fatal(err)
	}
	c := ds.Counts()
	fmt.Printf("%s: test %d/%d\n", ds.Name, c.TestPos, c.TestNeg)
	// Output: WDC Products: test 259/989
}

// ExampleNewStore shows the online serving workflow with the strategy
// tier configured: an in-memory store whose uncertain band is answered
// by one grouped compare prompt per query, with the reason tier
// re-checking conflicted verdicts.
func ExampleNewStore() {
	model, err := llm4em.NewModel(llm4em.GPT4)
	if err != nil {
		log.Fatal(err)
	}
	store := llm4em.NewStore(model, llm4em.StoreOptions{
		Domain: llm4em.Product,
		Cascade: llm4em.CascadeOptions{
			Strategy:   llm4em.StrategyCompare, // one prompt per query's band
			ReasonTier: true,                   // re-check conflicted verdicts
		},
	})
	rec := func(id, title string) llm4em.Record {
		return llm4em.Record{ID: id, Attrs: []llm4em.Attr{{Name: "title", Value: title}}}
	}
	// Two stored offers fall in the query's uncertain band, so the
	// compare strategy decides both with a single LLM round-trip.
	if err := store.AddBatch([]llm4em.Record{
		rec("r1", "alpha beta epsilon zeta sameent0002"),
		rec("r2", "alpha beta epsilon zeta sameent0002 extra"),
	}); err != nil {
		log.Fatal(err)
	}
	res, err := store.Resolve(rec("q1", "alpha beta gamma delta sameent0002"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decisions=%d llm_pairs=%d compare_calls=%d\n",
		len(res.Decisions), res.Cost.LLMPairs, res.Cost.CompareUsage.Calls)
	// Output: decisions=2 llm_pairs=2 compare_calls=1
}

// ExampleCostReport reads the per-call cost accounting a Resolve
// returns — the same fields emserve's /stats endpoint aggregates over
// the store's lifetime.
func ExampleCostReport() {
	model, err := llm4em.NewModel(llm4em.GPTMini)
	if err != nil {
		log.Fatal(err)
	}
	store := llm4em.NewStore(model, llm4em.StoreOptions{Domain: llm4em.Product})
	if err := store.Add(llm4em.Record{ID: "r1", Attrs: []llm4em.Attr{
		{Name: "title", Value: "sony cybershot dsc120b camera black"},
	}}); err != nil {
		log.Fatal(err)
	}
	res, err := store.Resolve(llm4em.Record{ID: "q1", Attrs: []llm4em.Attr{
		{Name: "title", Value: "sony cybershot dsc120b camera black"},
	}})
	if err != nil {
		log.Fatal(err)
	}
	cost := res.Cost
	fmt.Printf("candidates=%d local_accepts=%d llm_pairs=%d local_fraction=%.2f priced=%v\n",
		cost.Candidates, cost.LocalAccepts, cost.LLMPairs, cost.LocalFraction(), cost.Priced)
	// Output: candidates=1 local_accepts=1 llm_pairs=0 local_fraction=1.00 priced=true
}

// ExampleHandwrittenRules shows the Section 4.2 rule prompting
// building block.
func ExampleHandwrittenRules() {
	rules := llm4em.HandwrittenRules(llm4em.Publication)
	fmt.Println(len(rules), "rules; first:", rules[0][:36], "...")
	// Output: 4 rules; first: The titles of the two publications m ...
}

// ExampleRecord_Serialize shows the paper's serialization scheme:
// attribute values concatenated with blanks, names omitted.
func ExampleRecord_Serialize() {
	r := llm4em.Record{Attrs: []llm4em.Attr{
		{Name: "brand", Value: "DYMO"},
		{Name: "title", Value: "D1 Tape 12mm"},
		{Name: "currency", Value: ""},
		{Name: "price", Value: "12.99"},
	}}
	fmt.Println(r.Serialize())
	// Output: DYMO D1 Tape 12mm 12.99
}
