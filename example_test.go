package llm4em_test

import (
	"fmt"
	"log"

	"llm4em"
)

// ExampleMatcher shows the core matching workflow: build a matcher
// from a model and a prompt design, then match a pair of entity
// descriptions.
func ExampleMatcher() {
	model, err := llm4em.NewModel(llm4em.GPT4)
	if err != nil {
		log.Fatal(err)
	}
	design, err := llm4em.DesignByName("general-complex-force")
	if err != nil {
		log.Fatal(err)
	}
	matcher := llm4em.Matcher{Client: model, Design: design, Domain: llm4em.Product}

	pair := llm4em.Pair{
		ID: "example",
		A: llm4em.Record{ID: "a", Attrs: []llm4em.Attr{
			{Name: "title", Value: "Sony Cybershot DSC-120B digital camera black"},
			{Name: "price", Value: "348.00"},
		}},
		B: llm4em.Record{ID: "b", Attrs: []llm4em.Attr{
			{Name: "title", Value: "sony dsc120b camera black"},
			{Name: "price", Value: "351.99"},
		}},
	}
	d, err := matcher.MatchPair(pair)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answer=%s match=%v\n", d.Answer, d.Match)
	// Output: answer=Yes match=true
}

// ExampleParseAnswer demonstrates the paper's answer-parsing rule:
// lower-case the reply and look for the word "yes".
func ExampleParseAnswer() {
	fmt.Println(llm4em.ParseAnswer("Yes, the two offers match."))
	fmt.Println(llm4em.ParseAnswer("It is difficult to say."))
	fmt.Println(llm4em.ParseAnswer("The eyes have it."))
	// Output:
	// true
	// false
	// false
}

// ExampleLoadDataset loads one of the six regenerated benchmarks and
// prints its Table 1 statistics.
func ExampleLoadDataset() {
	ds, err := llm4em.LoadDataset("wdc")
	if err != nil {
		log.Fatal(err)
	}
	c := ds.Counts()
	fmt.Printf("%s: test %d/%d\n", ds.Name, c.TestPos, c.TestNeg)
	// Output: WDC Products: test 259/989
}

// ExampleHandwrittenRules shows the Section 4.2 rule prompting
// building block.
func ExampleHandwrittenRules() {
	rules := llm4em.HandwrittenRules(llm4em.Publication)
	fmt.Println(len(rules), "rules; first:", rules[0][:36], "...")
	// Output: 4 rules; first: The titles of the two publications m ...
}

// ExampleRecord_Serialize shows the paper's serialization scheme:
// attribute values concatenated with blanks, names omitted.
func ExampleRecord_Serialize() {
	r := llm4em.Record{Attrs: []llm4em.Attr{
		{Name: "brand", Value: "DYMO"},
		{Name: "title", Value: "D1 Tape 12mm"},
		{Name: "currency", Value: ""},
		{Name: "price", Value: "12.99"},
	}}
	fmt.Println(r.Serialize())
	// Output: DYMO D1 Tape 12mm 12.99
}
