#!/usr/bin/env bash
# Benchstat comparison of the hot-path benchmarks between two git
# revisions of this repository.
#
# Usage:
#   scripts/bench_compare.sh [OLD_REF] [BENCH_REGEX]
#
#   OLD_REF      revision to compare against (default HEAD~1)
#   BENCH_REGEX  benchmarks to run (default: the hot-path set)
#
# Environment:
#   BENCH_COUNT  -count per side (default 6 — benchstat needs repeats
#                for confidence intervals)
#   BENCH_TIME   -benchtime per run (default 0.5s)
#
# The old revision is checked out into a temporary git worktree, both
# sides run the same benchmarks, and benchstat reports the deltas.
# benchstat is installed at a pinned version on first use; if the
# install fails (offline sandbox), the raw outputs are printed side by
# side instead.
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

OLD_REF="${1:-HEAD~1}"
BENCH="${2:-BenchmarkIndexQuery|BenchmarkIndexAdd|BenchmarkStoreResolve|BenchmarkStoreAdd}"
COUNT="${BENCH_COUNT:-6}"
TIME="${BENCH_TIME:-0.5s}"
# Pinned so new benchstat releases never change CI behavior silently;
# bump deliberately.
BENCHSTAT_PIN="golang.org/x/perf/cmd/benchstat@v0.0.0-20230113213139-801c7ef9e5c5"

TMP="$(mktemp -d)"
cleanup() {
    git worktree remove --force "$TMP/old" >/dev/null 2>&1 || true
    rm -rf "$TMP"
}
trap cleanup EXIT

run_benches() { # dir outfile
    (cd "$1" && go test -run '^$' -bench "$BENCH" -benchtime "$TIME" -count "$COUNT" \
        ./internal/blocking/ ./internal/resolve/) > "$2"
}

echo "== old: $OLD_REF =="
git worktree add --detach "$TMP/old" "$OLD_REF" >/dev/null
run_benches "$TMP/old" "$TMP/old.txt"

echo "== new: working tree =="
run_benches . "$TMP/new.txt"

if ! command -v benchstat >/dev/null 2>&1; then
    echo "== installing pinned benchstat =="
    if GOBIN="$TMP/bin" go install "$BENCHSTAT_PIN" 2>/dev/null; then
        export PATH="$TMP/bin:$PATH"
    fi
fi

if command -v benchstat >/dev/null 2>&1; then
    echo "== benchstat $OLD_REF -> working tree =="
    benchstat "$TMP/old.txt" "$TMP/new.txt"
else
    echo "benchstat unavailable (offline?); raw outputs:"
    echo "--- old ($OLD_REF) ---"
    cat "$TMP/old.txt"
    echo "--- new (working tree) ---"
    cat "$TMP/new.txt"
fi
