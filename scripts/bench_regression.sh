#!/usr/bin/env bash
# Benchmark-regression gate for the resolve store.
#
# 1. Runs the resolve benches once (-benchtime=1x) as a smoke check —
#    they fail loudly if the store's hot path breaks under bench load.
# 2. Replays the cascade reference workload (120 WDC seed records x
#    120 queries) and compares the LLM-call count against the baseline
#    recorded in BENCH_resolve.json. More LLM calls than the baseline
#    is a cost regression and fails the build; when a change moves the
#    number intentionally, regenerate BENCH_resolve.json in the same
#    PR (the file documents how).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== resolve bench smoke (-benchtime=1x) =="
go test -run '^$' -bench 'BenchmarkStore' -benchtime=1x ./internal/resolve/

echo ""
echo "== LLM-call regression gate vs BENCH_resolve.json =="
BENCH_REGRESSION=1 go test -count=1 -run 'TestLLMCallRegression' -v ./internal/resolve/
