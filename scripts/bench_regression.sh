#!/usr/bin/env bash
# Benchmark-regression gate for the resolve store.
#
# 1. Runs the resolve, dispatcher and blocking hot-path benches once
#    (-benchtime=1x) as a smoke check — they fail loudly if the hot
#    path breaks under bench load.
# 2. Replays the cascade reference workload (120 WDC seed records x
#    120 queries) and compares the LLM-call count against the baseline
#    recorded in BENCH_resolve.json. More LLM calls than the baseline
#    is a cost regression and fails the build; when a change moves the
#    number intentionally, regenerate BENCH_resolve.json in the same
#    PR (the file documents how).
# 3. Replays the dispatcher reference workload (64 concurrent
#    resolvers, one uncertain pair each) and fails if the
#    micro-batching dispatcher achieves fewer round-trip savings than
#    the min_improvement_x recorded in BENCH_dispatch.json.
# 4. Measures resolve throughput and fails if it regresses more than
#    HOTPATH_SLACK (default 25%) against the ns/op recorded in
#    BENCH_hotpath.json. Hardware differences between the baseline
#    machine and the runner eat into the margin; raise HOTPATH_SLACK
#    (e.g. HOTPATH_SLACK=2.0) on much slower hosts, and regenerate
#    BENCH_hotpath.json in the same PR when a change moves the number
#    intentionally.
# 5. Measures resolve throughput with the telemetry subsystem enabled
#    (BenchmarkStoreResolveTelemetry) and compares it against the bare
#    number just measured on the SAME host: the instrumentation cost
#    of stage timers, counters and histograms must stay under
#    TELEMETRY_OVERHEAD (default 1.5 = +50%). Relative to a same-run
#    measurement, the gate is immune to hardware differences that the
#    absolute baseline gate needs HOTPATH_SLACK for.
# 6. Measures the compressed vs raw blocking postings at 100k records
#    (both sides on the SAME host, same run) and fails if the
#    compressed representation shrinks less than the min_reduction_x
#    recorded in BENCH_index10m.json (INDEX_MIN_REDUCTION overrides)
#    or queries more than query_parity_slack slower than raw
#    (INDEX_QUERY_SLACK overrides).
# 7. Measures the mmap restart path (BenchmarkOpenMapped, 100k-record
#    snapshot) against the absolute open_mapped_100k_ns baseline in
#    BENCH_index10m.json x restart_slack (INDEX_RESTART_SLACK
#    overrides; like HOTPATH_SLACK, raise it on much slower hosts).
#
# With ARTIFACT_DIR set, the full output is teed into
# $ARTIFACT_DIR/bench_output.txt and the dispatcher gate writes its
# measured-vs-baseline comparison to
# $ARTIFACT_DIR/dispatch_comparison.json — CI uploads the directory
# as a workflow artifact.
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

main() {
    echo "== hot-path bench smoke (-benchtime=1x) =="
    go test -run '^$' -bench 'BenchmarkStore' -benchtime=1x ./internal/resolve/
    go test -run '^$' -bench 'BenchmarkIndexQuery|BenchmarkIndexAdd' -benchtime=1x ./internal/blocking/

    echo ""
    echo "== LLM-call regression gate vs BENCH_resolve.json =="
    BENCH_REGRESSION=1 go test -count=1 -run 'TestLLMCallRegression' -v ./internal/resolve/

    echo ""
    echo "== dispatcher round-trip gate vs BENCH_dispatch.json =="
    BENCH_REGRESSION=1 go test -count=1 -run 'TestDispatchRoundTrips' -v ./internal/resolve/

    echo ""
    echo "== resolve throughput gate vs BENCH_hotpath.json =="
    BASE_NS="$(python3 -c "import json; print(json.load(open('BENCH_hotpath.json'))['resolve_10k']['after']['ns_op'])")"
    SLACK="${HOTPATH_SLACK:-1.25}"
    GOT_NS="$(go test -run '^$' -bench 'BenchmarkStoreResolve$' -benchtime=0.5s ./internal/resolve/ \
        | awk '/^BenchmarkStoreResolve/ {print $3; exit}')"
    if [ -z "$GOT_NS" ]; then
        echo "FAIL: could not measure BenchmarkStoreResolve" >&2
        exit 1
    fi
    awk -v got="$GOT_NS" -v base="$BASE_NS" -v slack="$SLACK" 'BEGIN {
        limit = base * slack
        printf "resolve: %.0f ns/op (baseline %.0f, limit %.0f = baseline x %.2f)\n", got, base, limit, slack
        if (got + 0 > limit) {
            printf "FAIL: resolve throughput regressed beyond the %.0f%% margin\n", (slack - 1) * 100
            exit 1
        }
        print "OK: resolve throughput gate passed"
    }'

    echo ""
    echo "== telemetry instrumentation-cost gate (relative to bare resolve) =="
    OVERHEAD="${TELEMETRY_OVERHEAD:-1.5}"
    TEL_NS="$(go test -run '^$' -bench 'BenchmarkStoreResolveTelemetry$' -benchtime=0.5s ./internal/resolve/ \
        | awk '/^BenchmarkStoreResolveTelemetry/ {print $3; exit}')"
    if [ -z "$TEL_NS" ]; then
        echo "FAIL: could not measure BenchmarkStoreResolveTelemetry" >&2
        exit 1
    fi
    awk -v got="$TEL_NS" -v bare="$GOT_NS" -v overhead="$OVERHEAD" 'BEGIN {
        limit = bare * overhead
        printf "resolve+telemetry: %.0f ns/op (bare %.0f, limit %.0f = bare x %.2f)\n", got, bare, limit, overhead
        if (got + 0 > limit) {
            printf "FAIL: telemetry instrumentation costs more than %.0f%% on the hot path\n", (overhead - 1) * 100
            exit 1
        }
        print "OK: telemetry instrumentation-cost gate passed"
    }'

    echo ""
    echo "== postings compression + query-parity gate vs BENCH_index10m.json =="
    MIN_REDUCTION="${INDEX_MIN_REDUCTION:-$(python3 -c "import json; print(json.load(open('BENCH_index10m.json'))['gates']['min_reduction_x'])")}"
    QUERY_SLACK="${INDEX_QUERY_SLACK:-$(python3 -c "import json; print(json.load(open('BENCH_index10m.json'))['gates']['query_parity_slack'])")}"
    IDX_OUT="$(go test -run '^$' -bench 'BenchmarkIndexQuery(Compressed|Raw)100k' -benchtime=0.5s ./internal/blocking/)"
    COMP_NS="$(printf '%s\n' "$IDX_OUT" | awk '/^BenchmarkIndexQueryCompressed100k/ {print $3; exit}')"
    COMP_BPR="$(printf '%s\n' "$IDX_OUT" | awk '/^BenchmarkIndexQueryCompressed100k/ {print $5; exit}')"
    RAW_NS="$(printf '%s\n' "$IDX_OUT" | awk '/^BenchmarkIndexQueryRaw100k/ {print $3; exit}')"
    RAW_BPR="$(printf '%s\n' "$IDX_OUT" | awk '/^BenchmarkIndexQueryRaw100k/ {print $5; exit}')"
    if [ -z "$COMP_NS" ] || [ -z "$COMP_BPR" ] || [ -z "$RAW_NS" ] || [ -z "$RAW_BPR" ]; then
        echo "FAIL: could not measure the 100k compressed/raw index benchmark pair" >&2
        exit 1
    fi
    awk -v cns="$COMP_NS" -v cbpr="$COMP_BPR" -v rns="$RAW_NS" -v rbpr="$RAW_BPR" \
        -v minred="$MIN_REDUCTION" -v slack="$QUERY_SLACK" 'BEGIN {
        red = rbpr / cbpr
        printf "postings size: compressed %.2f B/record vs raw %.2f (reduction %.2fx, floor %.2fx)\n", cbpr, rbpr, red, minred
        if (red < minred) {
            printf "FAIL: compressed postings shrink only %.2fx, below the %.2fx floor\n", red, minred
            exit 1
        }
        limit = rns * slack
        printf "query parity: compressed %.0f ns/op vs raw %.0f (limit %.0f = raw x %.2f)\n", cns, rns, limit, slack
        if (cns + 0 > limit) {
            printf "FAIL: compressed query is more than %.0f%% slower than raw\n", (slack - 1) * 100
            exit 1
        }
        print "OK: postings compression + query-parity gate passed"
    }'

    echo ""
    echo "== mmap restart gate vs BENCH_index10m.json =="
    OPEN_BASE="$(python3 -c "import json; print(json.load(open('BENCH_index10m.json'))['gates']['open_mapped_100k_ns'])")"
    RESTART_SLACK="${INDEX_RESTART_SLACK:-$(python3 -c "import json; print(json.load(open('BENCH_index10m.json'))['gates']['restart_slack'])")}"
    OPEN_NS="$(go test -run '^$' -bench 'BenchmarkOpenMapped$' -benchtime=0.5s ./internal/blocking/ \
        | awk '/^BenchmarkOpenMapped/ {print $3; exit}')"
    if [ -z "$OPEN_NS" ]; then
        echo "FAIL: could not measure BenchmarkOpenMapped" >&2
        exit 1
    fi
    awk -v got="$OPEN_NS" -v base="$OPEN_BASE" -v slack="$RESTART_SLACK" 'BEGIN {
        limit = base * slack
        printf "OpenMapped (100k snapshot): %.0f ns/op (baseline %.0f, limit %.0f = baseline x %.2f)\n", got, base, limit, slack
        if (got + 0 > limit) {
            print "FAIL: mmap restart regressed beyond the slack margin"
            exit 1
        }
        print "OK: mmap restart gate passed"
    }'
}

if [ -n "${ARTIFACT_DIR:-}" ]; then
    mkdir -p "$ARTIFACT_DIR"
    # Absolute: the gate test writes the comparison from inside its
    # package directory.
    ARTIFACT_DIR="$(cd "$ARTIFACT_DIR" && pwd)"
    export DISPATCH_COMPARISON_OUT="$ARTIFACT_DIR/dispatch_comparison.json"
    main 2>&1 | tee "$ARTIFACT_DIR/bench_output.txt"
else
    main
fi
