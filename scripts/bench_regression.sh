#!/usr/bin/env bash
# Benchmark-regression gate for the resolve store.
#
# 1. Runs the resolve, dispatcher and blocking hot-path benches once
#    (-benchtime=1x) as a smoke check — they fail loudly if the hot
#    path breaks under bench load.
# 2. Replays the cascade reference workload (120 WDC seed records x
#    120 queries) and compares the LLM-call count against the baseline
#    recorded in BENCH_resolve.json. More LLM calls than the baseline
#    is a cost regression and fails the build; when a change moves the
#    number intentionally, regenerate BENCH_resolve.json in the same
#    PR (the file documents how).
# 3. Replays the dispatcher reference workload (64 concurrent
#    resolvers, one uncertain pair each) and fails if the
#    micro-batching dispatcher achieves fewer round-trip savings than
#    the min_improvement_x recorded in BENCH_dispatch.json.
# 4. Measures resolve throughput and fails if it regresses more than
#    HOTPATH_SLACK (default 25%) against the ns/op recorded in
#    BENCH_hotpath.json. Hardware differences between the baseline
#    machine and the runner eat into the margin; raise HOTPATH_SLACK
#    (e.g. HOTPATH_SLACK=2.0) on much slower hosts, and regenerate
#    BENCH_hotpath.json in the same PR when a change moves the number
#    intentionally.
# 5. Measures resolve throughput with the telemetry subsystem enabled
#    (BenchmarkStoreResolveTelemetry) and compares it against the bare
#    number just measured on the SAME host: the instrumentation cost
#    of stage timers, counters and histograms must stay under
#    TELEMETRY_OVERHEAD (default 1.5 = +50%). Relative to a same-run
#    measurement, the gate is immune to hardware differences that the
#    absolute baseline gate needs HOTPATH_SLACK for.
#
# With ARTIFACT_DIR set, the full output is teed into
# $ARTIFACT_DIR/bench_output.txt and the dispatcher gate writes its
# measured-vs-baseline comparison to
# $ARTIFACT_DIR/dispatch_comparison.json — CI uploads the directory
# as a workflow artifact.
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

main() {
    echo "== hot-path bench smoke (-benchtime=1x) =="
    go test -run '^$' -bench 'BenchmarkStore' -benchtime=1x ./internal/resolve/
    go test -run '^$' -bench 'BenchmarkIndexQuery|BenchmarkIndexAdd' -benchtime=1x ./internal/blocking/

    echo ""
    echo "== LLM-call regression gate vs BENCH_resolve.json =="
    BENCH_REGRESSION=1 go test -count=1 -run 'TestLLMCallRegression' -v ./internal/resolve/

    echo ""
    echo "== dispatcher round-trip gate vs BENCH_dispatch.json =="
    BENCH_REGRESSION=1 go test -count=1 -run 'TestDispatchRoundTrips' -v ./internal/resolve/

    echo ""
    echo "== resolve throughput gate vs BENCH_hotpath.json =="
    BASE_NS="$(python3 -c "import json; print(json.load(open('BENCH_hotpath.json'))['resolve_10k']['after']['ns_op'])")"
    SLACK="${HOTPATH_SLACK:-1.25}"
    GOT_NS="$(go test -run '^$' -bench 'BenchmarkStoreResolve$' -benchtime=0.5s ./internal/resolve/ \
        | awk '/^BenchmarkStoreResolve/ {print $3; exit}')"
    if [ -z "$GOT_NS" ]; then
        echo "FAIL: could not measure BenchmarkStoreResolve" >&2
        exit 1
    fi
    awk -v got="$GOT_NS" -v base="$BASE_NS" -v slack="$SLACK" 'BEGIN {
        limit = base * slack
        printf "resolve: %.0f ns/op (baseline %.0f, limit %.0f = baseline x %.2f)\n", got, base, limit, slack
        if (got + 0 > limit) {
            printf "FAIL: resolve throughput regressed beyond the %.0f%% margin\n", (slack - 1) * 100
            exit 1
        }
        print "OK: resolve throughput gate passed"
    }'

    echo ""
    echo "== telemetry instrumentation-cost gate (relative to bare resolve) =="
    OVERHEAD="${TELEMETRY_OVERHEAD:-1.5}"
    TEL_NS="$(go test -run '^$' -bench 'BenchmarkStoreResolveTelemetry$' -benchtime=0.5s ./internal/resolve/ \
        | awk '/^BenchmarkStoreResolveTelemetry/ {print $3; exit}')"
    if [ -z "$TEL_NS" ]; then
        echo "FAIL: could not measure BenchmarkStoreResolveTelemetry" >&2
        exit 1
    fi
    awk -v got="$TEL_NS" -v bare="$GOT_NS" -v overhead="$OVERHEAD" 'BEGIN {
        limit = bare * overhead
        printf "resolve+telemetry: %.0f ns/op (bare %.0f, limit %.0f = bare x %.2f)\n", got, bare, limit, overhead
        if (got + 0 > limit) {
            printf "FAIL: telemetry instrumentation costs more than %.0f%% on the hot path\n", (overhead - 1) * 100
            exit 1
        }
        print "OK: telemetry instrumentation-cost gate passed"
    }'
}

if [ -n "${ARTIFACT_DIR:-}" ]; then
    mkdir -p "$ARTIFACT_DIR"
    # Absolute: the gate test writes the comparison from inside its
    # package directory.
    ARTIFACT_DIR="$(cd "$ARTIFACT_DIR" && pwd)"
    export DISPATCH_COMPARISON_OUT="$ARTIFACT_DIR/dispatch_comparison.json"
    main 2>&1 | tee "$ARTIFACT_DIR/bench_output.txt"
else
    main
fi
