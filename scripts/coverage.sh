#!/usr/bin/env bash
# Coverage gate: print per-package coverage and fail if the total
# drops below the baseline.
#
# The baseline trails the measured repo-wide statement coverage
# (82.8% after the dispatcher PR) by a safety margin: dispatcher
# flush paths are scheduling-dependent, so exact coverage can jitter
# a few tenths between runs. When a PR legitimately moves it, update
# COVERAGE_BASELINE here in the same PR and say so in the PR
# description.
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

BASELINE="${COVERAGE_BASELINE:-82.3}"
PROFILE="$(mktemp)"
trap 'rm -f "$PROFILE"' EXIT

# Examples are runnable documentation, not gated surface: as no-test
# packages they would count as 0% and adding one would mechanically
# sink the total. Everything else — library, internal, commands — is
# measured. One run produces both the per-package lines and the
# merged profile.
mapfile -t PKGS < <(go list ./... | grep -v '/examples/')
go test -count=1 -coverprofile="$PROFILE" "${PKGS[@]}"

TOTAL="$(go tool cover -func="$PROFILE" | awk '/^total:/ {sub(/%/, "", $NF); print $NF}')"
echo ""
echo "total statement coverage: ${TOTAL}% (baseline ${BASELINE}%)"
awk -v total="$TOTAL" -v base="$BASELINE" 'BEGIN {
    if (total + 0 < base + 0) {
        printf "FAIL: total coverage %.1f%% dropped below the %.1f%% baseline\n", total, base
        exit 1
    }
    printf "OK: coverage gate passed\n"
}'
