#!/usr/bin/env bash
# Chaos smoke test of cmd/emserve (the CI "chaos-smoke" job, also
# runnable locally): boots the server with a -chaos-outage window so
# every LLM call fails for the first seconds of its life, drives
# resolves straight into the outage, and asserts the fault-tolerance
# contract end to end:
#
#   - no resolve ever surfaces a 5xx: escalations degrade to local
#     verdicts marked "deferred" instead of failing,
#   - /readyz stays 200 but annotates degraded=llm_breaker_open,
#   - /metrics shows the breaker open (em_llm_breaker_state) and the
#     degraded pairs counted (em_deferred_pairs_total),
#   - once the outage window closes, the background re-escalator
#     drains the deferred queue and the final snapshot journals the
#     pairs as ordinary LLM decisions, no longer deferred.
#
# Environment:
#   EMSERVE_ADDR  listen address (default 127.0.0.1:18081)
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

ADDR="${EMSERVE_ADDR:-127.0.0.1:18081}"
TMP="$(mktemp -d)"
SRV_PID=""
cleanup() {
    if [ -n "$SRV_PID" ] && kill -0 "$SRV_PID" 2>/dev/null; then
        kill -9 "$SRV_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    if [ -f "$TMP/server.log" ]; then
        echo "--- server log ---" >&2
        cat "$TMP/server.log" >&2
    fi
    exit 1
}

echo "== build emserve =="
go build -o "$TMP/emserve" ./cmd/emserve

echo "== start with an 8s LLM outage window =="
# Aggressive resilience settings so the breaker trips on the first
# failed call and deferred pairs are retried quickly after recovery.
"$TMP/emserve" -addr "$ADDR" -persist "$TMP/data" \
    -chaos-outage 8s -breaker-failures 1 -breaker-cooldown 500ms \
    -deferred-retry 100ms -log-format json \
    >"$TMP/server.log" 2>&1 &
SRV_PID=$!

up=""
for _ in $(seq 1 100); do
    if curl -fsS "http://$ADDR/stats" >/dev/null 2>&1; then
        up=1
        break
    fi
    kill -0 "$SRV_PID" 2>/dev/null || fail "server died during startup"
    sleep 0.1
done
[ -n "$up" ] || fail "server did not come up on $ADDR within 10s"

echo "== ingest records =="
curl -fsS -X POST "http://$ADDR/records" -d '{"records":[
  {"id":"r1","attrs":[{"name":"title","value":"sony dsc120b cybershot camera silver"}]},
  {"id":"r2","attrs":[{"name":"title","value":"alpha beta gamma delta sameent0002"}]},
  {"id":"r3","attrs":[{"name":"title","value":"alpha beta gamma delta sameent0003"}]}]}' \
    | jq -e '.added == 3' >/dev/null || fail "ingest did not add 3 records"

echo "== resolves during the outage: degrade, never 5xx =="
# Mid-band similarity: the cascade cannot decide these locally, so
# every one needs the (dead) LLM — and must still answer 200 with the
# decisions explicitly marked deferred. curl -f fails on any 5xx.
curl -fsS -X POST "http://$ADDR/resolve" \
    -d '{"id":"q1","attrs":[{"name":"title","value":"alpha beta epsilon zeta sameent0002"}]}' \
    >"$TMP/resolve1.json" || fail "resolve during outage surfaced an error"
jq -e '[.decisions[] | select(.deferred == true and .method == "deferred-local")] | length >= 1' \
    "$TMP/resolve1.json" >/dev/null || fail "outage resolve carries no deferred decision"
curl -fsS -X POST "http://$ADDR/resolve" \
    -d '{"id":"q2","attrs":[{"name":"title","value":"alpha beta epsilon zeta sameent0003"}]}' \
    >"$TMP/resolve2.json" || fail "second resolve during outage surfaced an error"
jq -e '[.decisions[] | select(.deferred == true)] | length >= 1' \
    "$TMP/resolve2.json" >/dev/null || fail "second outage resolve carries no deferred decision"

echo "== degraded mode is visible, replica stays ready =="
curl -fsS "http://$ADDR/readyz" >"$TMP/readyz.json" || fail "/readyz not 200 while degraded"
jq -e '.status == "ready" and .degraded == "llm_breaker_open"' "$TMP/readyz.json" >/dev/null \
    || fail "/readyz lacks the degraded annotation: $(cat "$TMP/readyz.json")"
curl -fsS "http://$ADDR/stats" \
    | jq -e '.resilience.enabled == true and .resilience.breaker_state != "closed"
             and .resilience.deferred_pairs >= 2 and .resilience.deferred_queue >= 1' >/dev/null \
    || fail "/stats resilience block does not reflect the outage"

echo "== breaker and deferred metrics are exported =="
curl -fsS "http://$ADDR/metrics" >"$TMP/metrics.txt" || fail "could not scrape /metrics"
metric_nonzero() {
    awk -v name="$1" '$1 == name && $2 + 0 > 0 {found = 1} END {exit !found}' "$TMP/metrics.txt" \
        || fail "metric $1 is missing or zero"
}
metric_nonzero em_llm_breaker_state
metric_nonzero em_deferred_pairs_total
metric_nonzero em_breaker_trips_total

echo "== outage ends: deferred queue drains through the re-escalator =="
drained=""
for _ in $(seq 1 300); do
    if curl -fsS "http://$ADDR/stats" \
        | jq -e '.resilience.deferred_queue == 0 and .resilience.redecided >= 2
                 and .resilience.breaker_state == "closed"' >/dev/null 2>&1; then
        drained=1
        break
    fi
    sleep 0.1
done
[ -n "$drained" ] || fail "deferred queue did not drain after the outage window"
curl -fsS "http://$ADDR/readyz" | jq -e '.status == "ready" and (has("degraded") | not)' >/dev/null \
    || fail "/readyz still degraded after recovery"

echo "== no resolve ever answered 5xx =="
curl -fsS "http://$ADDR/metrics" >"$TMP/metrics2.txt" || fail "could not re-scrape /metrics"
awk '/^em_http_responses_total\{class="5xx",route="resolve"\}/ && $2 + 0 > 0 {exit 1}' \
    "$TMP/metrics2.txt" || fail "resolve answered a 5xx during the outage"

echo "== shutdown: re-decided pairs are journaled as ordinary LLM decisions =="
kill -TERM "$SRV_PID"
STATUS=0
wait "$SRV_PID" || STATUS=$?
SRV_PID=""
[ "$STATUS" -eq 0 ] || fail "server exited with status $STATUS"
jq -e '([.journal[] | select(.deferred == true)] | length == 0) and
       ([.journal[] | select(.method == "llm")] | length >= 2)' "$TMP/data/snapshot.json" >/dev/null \
    || fail "final snapshot still carries deferred verdicts"
jq -e '.deferred == null or (.deferred | length == 0)' "$TMP/data/snapshot.json" >/dev/null \
    || fail "final snapshot still queues deferred pairs"

echo "OK: chaos smoke passed"
