#!/usr/bin/env bash
# End-to-end smoke test of cmd/emserve (the CI "e2e-smoke" job, also
# runnable locally): builds the binary, starts it with durability and
# the micro-batching dispatcher enabled, exercises the HTTP API
# (ingest, resolve, entity read-back, stats), then sends SIGTERM and
# asserts a clean graceful drain and a non-empty final snapshot.
#
# Environment:
#   EMSERVE_ADDR  listen address (default 127.0.0.1:18080)
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

ADDR="${EMSERVE_ADDR:-127.0.0.1:18080}"
TMP="$(mktemp -d)"
SRV_PID=""
cleanup() {
    if [ -n "$SRV_PID" ] && kill -0 "$SRV_PID" 2>/dev/null; then
        kill -9 "$SRV_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    if [ -f "$TMP/server.log" ]; then
        echo "--- server log ---" >&2
        cat "$TMP/server.log" >&2
    fi
    exit 1
}

echo "== build emserve =="
go build -o "$TMP/emserve" ./cmd/emserve

echo "== start (persist + dispatcher) =="
"$TMP/emserve" -addr "$ADDR" -persist "$TMP/data" -dispatch-pairs 8 \
    >"$TMP/server.log" 2>&1 &
SRV_PID=$!

up=""
for _ in $(seq 1 100); do
    if curl -fsS "http://$ADDR/stats" >/dev/null 2>&1; then
        up=1
        break
    fi
    kill -0 "$SRV_PID" 2>/dev/null || fail "server died during startup"
    sleep 0.1
done
[ -n "$up" ] || fail "server did not come up on $ADDR within 10s"

echo "== ingest records =="
curl -fsS -X POST "http://$ADDR/records" -d '{"records":[
  {"id":"r1","attrs":[{"name":"title","value":"sony dsc120b cybershot camera silver"}]},
  {"id":"r2","attrs":[{"name":"title","value":"makita impact drill kit 18v"}]}]}' \
    | jq -e '.added == 2' >/dev/null || fail "ingest did not add 2 records"

echo "== resolve a query =="
curl -fsS -X POST "http://$ADDR/resolve" \
    -d '{"id":"q1","attrs":[{"name":"title","value":"sony dsc120b cybershot camera silver"}]}' \
    | jq -e '.matched == true and .entity_id == "q1"' >/dev/null \
    || fail "resolve did not match q1 to r1"

echo "== read entity and stats back =="
curl -fsS "http://$ADDR/entities/q1" | jq -e '.members | length >= 2' >/dev/null \
    || fail "entity q1 has fewer than 2 members"
curl -fsS "http://$ADDR/stats" \
    | jq -e '.records == 2 and .resolves == 1 and .dispatch.enabled == true and .persist.enabled == true' >/dev/null \
    || fail "stats do not reflect the workload"

echo "== graceful shutdown (SIGTERM) =="
kill -TERM "$SRV_PID"
STATUS=0
wait "$SRV_PID" || STATUS=$?
SRV_PID=""
[ "$STATUS" -eq 0 ] || fail "server exited with status $STATUS"
grep -q "state flushed, bye" "$TMP/server.log" \
    || fail "server log lacks the clean-drain line"

echo "== final snapshot =="
[ -s "$TMP/data/snapshot.json" ] || fail "snapshot.json missing or empty"
jq -e '(.records | length) == 2' "$TMP/data/snapshot.json" >/dev/null \
    || fail "snapshot does not contain the 2 ingested records"

echo "OK: e2e smoke passed"
