#!/usr/bin/env bash
# End-to-end smoke test of cmd/emserve (the CI "e2e-smoke" job, also
# runnable locally): builds the binary, starts it with durability and
# the micro-batching dispatcher enabled, exercises the HTTP API
# (ingest, resolve — one local and one LLM-escalated — entity
# read-back, stats) through the canonical /v1 routes plus one
# deprecated legacy alias, scrapes the observability surface (/metrics
# exposition, /healthz, /readyz, X-Request-ID, slow-resolve exemplar
# in the JSON logs), then sends SIGTERM and asserts a clean graceful
# drain and a non-empty final snapshot.
#
# Environment:
#   EMSERVE_ADDR  listen address (default 127.0.0.1:18080)
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

ADDR="${EMSERVE_ADDR:-127.0.0.1:18080}"
TMP="$(mktemp -d)"
SRV_PID=""
cleanup() {
    if [ -n "$SRV_PID" ] && kill -0 "$SRV_PID" 2>/dev/null; then
        kill -9 "$SRV_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    if [ -f "$TMP/server.log" ]; then
        echo "--- server log ---" >&2
        cat "$TMP/server.log" >&2
    fi
    exit 1
}

echo "== build emserve =="
go build -o "$TMP/emserve" ./cmd/emserve

echo "== start (persist + dispatcher + telemetry) =="
# -sync-every 1 exercises per-append fsync so em_wal_fsync_seconds is
# non-zero; -slow-resolve 1ns makes every resolve emit the structured
# exemplar line, which the JSON log assertions below pick up.
"$TMP/emserve" -addr "$ADDR" -persist "$TMP/data" -dispatch-pairs 8 \
    -sync-every 1 -log-format json -slow-resolve 1ns \
    >"$TMP/server.log" 2>&1 &
SRV_PID=$!

up=""
for _ in $(seq 1 100); do
    if curl -fsS "http://$ADDR/v1/stats" >/dev/null 2>&1; then
        up=1
        break
    fi
    kill -0 "$SRV_PID" 2>/dev/null || fail "server died during startup"
    sleep 0.1
done
[ -n "$up" ] || fail "server did not come up on $ADDR within 10s"

echo "== probes =="
curl -fsS "http://$ADDR/v1/healthz" | jq -e '.status == "ok"' >/dev/null \
    || fail "/healthz is not ok"
curl -fsS "http://$ADDR/v1/readyz" | jq -e '.status == "ready"' >/dev/null \
    || fail "/readyz is not ready after startup"
# Healthy backend: the degraded annotation must be absent (it appears
# with degraded=llm_breaker_open when the LLM breaker is open; see
# scripts/chaos_smoke.sh for the outage side of this contract).
curl -fsS "http://$ADDR/v1/readyz" | jq -e 'has("degraded") | not' >/dev/null \
    || fail "/readyz carries a degraded annotation on a healthy backend"
curl -fsSi "http://$ADDR/v1/healthz" | grep -qi '^x-request-id:' \
    || fail "response lacks an X-Request-ID header"

echo "== legacy alias answers with Deprecation =="
curl -fsSi "http://$ADDR/stats" >"$TMP/legacy.txt" || fail "legacy /stats alias broken"
grep -qi '^deprecation: true' "$TMP/legacy.txt" \
    || fail "legacy /stats lacks the Deprecation header"
grep -qi '^link: </v1/stats>; rel="successor-version"' "$TMP/legacy.txt" \
    || fail "legacy /stats lacks the successor-version Link header"
curl -fsSi "http://$ADDR/v1/stats" | grep -qi '^deprecation:' \
    && fail "/v1/stats wrongly carries a Deprecation header"

echo "== ingest records =="
curl -fsS -X POST "http://$ADDR/v1/records" -d '{"records":[
  {"id":"r1","attrs":[{"name":"title","value":"sony dsc120b cybershot camera silver"}]},
  {"id":"r2","attrs":[{"name":"title","value":"makita impact drill kit 18v"}]},
  {"id":"r3","attrs":[{"name":"title","value":"alpha beta gamma delta sameent0002"}]}]}' \
    | jq -e '.added == 3' >/dev/null || fail "ingest did not add 3 records"

echo "== resolve a query (local decision) =="
curl -fsS -X POST "http://$ADDR/v1/resolve" \
    -d '{"id":"q1","attrs":[{"name":"title","value":"sony dsc120b cybershot camera silver"}]}' \
    | jq -e '.matched == true and .entity_id == "q1"' >/dev/null \
    || fail "resolve did not match q1 to r1"

echo "== resolve a query (LLM escalation) =="
# Mid-band similarity to r3: the cascade cannot decide locally and
# routes the pair through the dispatcher to the model.
curl -fsS -X POST "http://$ADDR/v1/resolve" \
    -d '{"id":"q2","attrs":[{"name":"title","value":"alpha beta epsilon zeta sameent0002"}]}' \
    >/dev/null || fail "escalated resolve failed"

echo "== read entity and stats back =="
curl -fsS "http://$ADDR/v1/entities/q1" | jq -e '.members | length >= 2' >/dev/null \
    || fail "entity q1 has fewer than 2 members"
curl -fsS "http://$ADDR/v1/stats" \
    | jq -e '.records == 3 and .resolves == 2 and .dispatch.enabled == true and .persist.enabled == true' >/dev/null \
    || fail "stats do not reflect the workload"
curl -fsS "http://$ADDR/v1/stats" \
    | jq -e '.telemetry.enabled == true and .telemetry.resolve_total == 2' >/dev/null \
    || fail "stats lack the telemetry block"
# The fault-tolerance layer is on by default and idle on a healthy
# backend: breaker closed, nothing shed, deferred queue empty.
curl -fsS "http://$ADDR/v1/stats" \
    | jq -e '.resilience.enabled == true and .resilience.breaker_state == "closed"
             and .resilience.shed == 0 and .resilience.deferred_queue == 0' >/dev/null \
    || fail "stats lack the resilience block"
curl -fsSi "http://$ADDR/v1/stats" | grep -qi '^cache-control: no-store' \
    || fail "/stats is missing Cache-Control: no-store"

echo "== scrape /metrics =="
curl -fsS "http://$ADDR/v1/metrics" >"$TMP/metrics.txt" \
    || fail "could not scrape /metrics"
metric_nonzero() {
    awk -v name="$1" '$1 == name && $2 + 0 > 0 {found = 1} END {exit !found}' "$TMP/metrics.txt" \
        || fail "metric $1 is missing or zero"
}
metric_nonzero em_resolve_total
metric_nonzero em_llm_calls_total
metric_nonzero em_wal_fsync_seconds_count
grep -q '^# TYPE em_resolve_stage_seconds histogram' "$TMP/metrics.txt" \
    || fail "/metrics lacks the stage histogram TYPE line"

echo "== slow-resolve exemplar in JSON logs =="
grep -q '"msg":"slow resolve"' "$TMP/server.log" \
    || fail "no slow-resolve exemplar line in the JSON logs"
grep '"msg":"slow resolve"' "$TMP/server.log" | head -1 | jq -e '.trace_id | length > 0' >/dev/null \
    || fail "slow-resolve line lacks a trace_id"

echo "== graceful shutdown (SIGTERM) =="
kill -TERM "$SRV_PID"
STATUS=0
wait "$SRV_PID" || STATUS=$?
SRV_PID=""
[ "$STATUS" -eq 0 ] || fail "server exited with status $STATUS"
grep -q "state flushed, bye" "$TMP/server.log" \
    || fail "server log lacks the clean-drain line"

echo "== final snapshot =="
[ -s "$TMP/data/snapshot.json" ] || fail "snapshot.json missing or empty"
# Records live in the per-shard mmap index snapshots; snapshot.json
# binds their epoch and keeps only non-reconstructible state inline.
jq -e '.index_shards > 0 and .index_epoch > 0 and (.records | length) == 0' \
    "$TMP/data/snapshot.json" >/dev/null \
    || fail "snapshot does not reference a committed index generation"
ls "$TMP"/data/index-*.emx >/dev/null 2>&1 \
    || fail "no mmap index snapshot files on disk"

echo "OK: e2e smoke passed"
