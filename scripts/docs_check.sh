#!/usr/bin/env bash
# docs_check.sh — CI documentation gate.
#
# 1. Every relative link in tracked *.md files must resolve to an
#    existing file or directory.
# 2. The emserve flag documentation must match the binary: every flag
#    `emserve -help` prints is documented in docs/OPERATIONS.md, every
#    flag the OPERATIONS table documents exists, and every
#    parenthesized `(-flag)` reference in README.md names a real flag.
# 3. Every route the emserve server registers is documented under its
#    canonical /v1 path in the OPERATIONS endpoint table.
# 4. The testable Example functions of the facade keep compiling and
#    producing their pinned output.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- 1. relative markdown links -------------------------------------
while IFS= read -r md; do
  dir=$(dirname "$md")
  while IFS= read -r link; do
    [ -n "$link" ] || continue
    case "$link" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    target=${link%%#*}   # drop the anchor
    target=${target%% *} # drop a link title
    [ -n "$target" ] || continue
    if [ ! -e "$dir/$target" ]; then
      echo "docs_check: broken relative link in $md: ($link)" >&2
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
done < <(git ls-files '*.md')

# --- 2. emserve flag drift ------------------------------------------
help=$(go run ./cmd/emserve -help 2>&1) || {
  echo "docs_check: emserve -help failed:" >&2
  printf '%s\n' "$help" >&2
  exit 1
}
actual=$(printf '%s\n' "$help" | grep -oE '^  -[a-z-]+' | tr -d ' ' | sort)
if [ -z "$actual" ]; then
  echo "docs_check: could not parse any flags out of emserve -help" >&2
  exit 1
fi

# Every real flag appears in the OPERATIONS reference table.
while IFS= read -r f; do
  if ! grep -qF -- "\`$f\`" docs/OPERATIONS.md; then
    echo "docs_check: emserve flag $f is missing from docs/OPERATIONS.md" >&2
    fail=1
  fi
done <<<"$actual"

# Every flag the OPERATIONS table documents still exists.
while IFS= read -r f; do
  [ -n "$f" ] || continue
  if ! grep -qxF -- "$f" <<<"$actual"; then
    echo "docs_check: docs/OPERATIONS.md documents unknown emserve flag $f" >&2
    fail=1
  fi
done < <(grep -oE '^\| `-[a-z-]+`' docs/OPERATIONS.md | grep -oE -- '-[a-z-]+' | sort -u)

# Every parenthesized (`-flag`) reference in the README knob tables
# names a real flag.
while IFS= read -r f; do
  [ -n "$f" ] || continue
  if ! grep -qxF -- "$f" <<<"$actual"; then
    echo "docs_check: README.md references unknown emserve flag $f" >&2
    fail=1
  fi
done < <(grep -oE '\(`-[a-z-]+`\)' README.md | grep -oE -- '-[a-z-]+' | sort -u)

# --- 3. emserve /v1 route coverage ----------------------------------
# Every route the server registers (the routes table in
# cmd/emserve/server.go) must be documented under its /v1 path in the
# OPERATIONS endpoint table.
routes=$(grep -oE '\{"(GET|POST)", "/[^"]*"' cmd/emserve/server.go | sed -E 's/.*, "//; s/"$//')
if [ -z "$routes" ]; then
  echo "docs_check: could not parse the route table out of cmd/emserve/server.go" >&2
  exit 1
fi
while IFS= read -r p; do
  [ -n "$p" ] || continue
  if ! grep -qF -- "/v1$p" docs/OPERATIONS.md; then
    echo "docs_check: route /v1$p is missing from docs/OPERATIONS.md" >&2
    fail=1
  fi
done <<<"$routes"

# --- 4. the documented examples still run ---------------------------
if ! go test . -run Example -count=1 >/dev/null; then
  echo "docs_check: facade Example tests failed (go test . -run Example)" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "docs_check: FAILED" >&2
  exit 1
fi
echo "docs_check: OK (links, emserve flag tables, /v1 routes, examples)"
