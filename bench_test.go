// Package llm4em benchmarks: one testing.B benchmark per table and
// figure of the paper's evaluation section. Each benchmark runs the
// same code path as the full experiment harness on a reduced workload
// (capped test splits, fewer models where the table's claim survives
// the reduction), so `go test -bench=.` regenerates every experiment
// end to end in reasonable time. The full-scale tables are produced
// by `go run ./cmd/emexperiments -table all`.
package llm4em_test

import (
	"testing"

	"llm4em/internal/experiments"
)

// benchSession builds a session scaled for benchmarking.
func benchSession(models, keys []string, maxTest int) *experiments.Session {
	cfg := experiments.Quick(maxTest)
	cfg.Models = models
	cfg.Datasets = keys
	return experiments.NewSession(cfg)
}

var (
	benchModelsAll = []string{"GPT-mini", "GPT-4", "GPT-4o", "Llama2", "Llama3.1", "Mixtral"}
	benchModels2   = []string{"GPT-4", "Mixtral"}
	benchKeysAll   = []string{"wdc", "ab", "wa", "ag", "ds", "da"}
	benchKeys2     = []string{"wdc", "ds"}
)

func BenchmarkTable1DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table1(experiments.Default())
		if len(t.Rows) != 6 {
			b.Fatal("unexpected Table 1 shape")
		}
	}
}

func BenchmarkTable2ZeroShot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(benchModelsAll, benchKeys2, 150)
		if _, err := experiments.Table2(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3ZeroShotAverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(benchModels2, benchKeysAll, 100)
		if _, err := experiments.Table3(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4PLMComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(benchModels2, benchKeys2, 150)
		if _, err := experiments.Table4(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5FewShotRules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(benchModels2, benchKeys2, 100)
		if _, err := experiments.Table5(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6InContextMean(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(benchModels2, benchKeys2, 100)
		if _, err := experiments.Table6(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7FineTuning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession([]string{"GPT-4", "Llama2", "GPT-mini"}, benchKeys2, 100)
		if _, err := experiments.Table7(s, []string{"Llama2", "GPT-mini"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable8Costs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession([]string{"GPT-mini", "GPT-4", "GPT-4o"}, []string{"wdc"}, 150)
		if _, err := experiments.Table8(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable9Runtime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession([]string{"GPT-mini", "GPT-4", "Llama2", "Llama3.1"}, []string{"wdc"}, 150)
		if _, err := experiments.Table9(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable10ExplanationAggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession([]string{"GPT-4"}, []string{"wa", "ds"}, 150)
		if _, err := experiments.Table10(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExplanationCorrelation(b *testing.B) {
	// The Section 6.1 validation runs inside Table 10; this benchmark
	// isolates it on DBLP-Scholar.
	for i := 0; i < b.N; i++ {
		s := benchSession([]string{"GPT-4"}, []string{"ds"}, 200)
		tables, err := experiments.Table10(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no Table 10 output")
		}
	}
}

func BenchmarkTable11ErrorClassesDS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession([]string{"GPT-4"}, []string{"ds"}, 400)
		if _, err := experiments.Table11(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable12ErrorClassesWA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession([]string{"GPT-4"}, []string{"wa"}, 400)
		if _, err := experiments.Table12(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable13ErrorAssignment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession([]string{"GPT-4"}, []string{"wa", "ds"}, 400)
		if _, err := experiments.Table13(s); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkFigure(b *testing.B, n int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s := benchSession([]string{"GPT-4"}, []string{"wdc", "wa", "ds"}, 200)
		out, err := experiments.Figure(s, n)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure1PromptExample(b *testing.B)           { benchmarkFigure(b, 1) }
func BenchmarkFigure2FewShotPrompt(b *testing.B)           { benchmarkFigure(b, 2) }
func BenchmarkFigure3RulesPrompt(b *testing.B)             { benchmarkFigure(b, 3) }
func BenchmarkFigure4ExplanationConversation(b *testing.B) { benchmarkFigure(b, 4) }
func BenchmarkFigure5ErrorClassPrompt(b *testing.B)        { benchmarkFigure(b, 5) }
func BenchmarkFigure6ErrorAssignmentPrompt(b *testing.B)   { benchmarkFigure(b, 6) }

func BenchmarkAblationSerialization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(benchModels2, []string{"wdc"}, 150)
		if _, err := experiments.AblationSerialization(s, "wdc"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationShots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession([]string{"GPT-4o"}, []string{"wdc"}, 120)
		if _, err := experiments.AblationShots(s, "wdc", "GPT-4o"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBatchMatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession([]string{"GPT-mini"}, []string{"wdc"}, 150)
		if _, err := experiments.AblationBatch(s, "wdc", "GPT-mini"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationAdditionalModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession(nil, []string{"wdc"}, 100)
		if _, err := experiments.AblationAdditionalModels(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPromptSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession([]string{"Mixtral"}, []string{"wdc"}, 120)
		if _, err := experiments.AblationPromptSearch(s, "wdc", "Mixtral"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFutureWorkErrorProfiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession([]string{"GPT-4", "GPT-mini"}, []string{"wa"}, 250)
		if _, err := experiments.ErrorProfiles(s, "wa", []string{"GPT-4", "GPT-mini"}); err != nil {
			b.Fatal(err)
		}
	}
}
